"""Golden-trace corpora and the regression harness around them.

Because the virtual clock and every RNG are seeded, a crawl of a fixed
corpus emits a byte-stable canonical trace.  Two small corpora are
checked in under ``tests/golden/``:

* **webmail** — one AJAX crawl of SimMail's inbox (folder tabs, AJAX
  folder loads, destructive events that must be skipped),
* **youtube** — an AJAX crawl of the first :data:`YOUTUBE_VIDEOS`
  SimTube videos (hot-node cache traffic, duplicate states).

``make trace-verify`` re-runs both crawls and diffs the event streams
against the goldens; any change to crawl order, cache behaviour, retry
accounting or state dedup fails loudly with an event-level diff instead
of silently drifting away from the paper's figures.  When a change is
*intentional*, regenerate with::

    python -m repro.obs.goldens --regen

and commit the new golden files together with the change that explains
them.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.clock import CostModel, SimClock
from repro.crawler import AjaxCrawler, CrawlerConfig
from repro.obs.recorder import Recorder
from repro.obs.trace import diff_traces, normalize_lines
from repro.obs.events import TraceEvent, to_jsonl
from repro.sites import SiteConfig, SyntheticWebmail, SyntheticYouTube

#: Where the golden traces live, relative to the repo root.
GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"

#: SimTube size/seed of the youtube golden corpus (small on purpose —
#: goldens are reviewed by humans).
YOUTUBE_VIDEOS = 3
YOUTUBE_SEED = 7

#: Fields a golden comparison is allowed to mask.  Empty by default:
#: the whole pipeline is deterministic, so everything is asserted.
ALLOWED_DRIFT_FIELDS: tuple[str, ...] = ()


def webmail_trace() -> list[TraceEvent]:
    """The canonical trace of the seeded SimMail crawl."""
    site = SyntheticWebmail()
    recorder = Recorder(clock=SimClock())
    crawler = AjaxCrawler(
        site, CrawlerConfig(), clock=recorder.clock, cost_model=CostModel(), recorder=recorder
    )
    crawler.crawl([site.inbox_url])
    return recorder.events


def youtube_trace() -> list[TraceEvent]:
    """The canonical trace of the seeded SimTube crawl."""
    site = SyntheticYouTube(SiteConfig(num_videos=YOUTUBE_VIDEOS, seed=YOUTUBE_SEED))
    recorder = Recorder(clock=SimClock())
    crawler = AjaxCrawler(
        site, CrawlerConfig(), clock=recorder.clock, cost_model=CostModel(), recorder=recorder
    )
    crawler.crawl([site.video_url(i) for i in range(YOUTUBE_VIDEOS)])
    return recorder.events


def webmail_spans_trace() -> list[TraceEvent]:
    """The SimMail crawl traced with the span layer on.

    Same crawl as :func:`webmail_trace` (spans never charge virtual
    time, so the point events are byte-identical modulo the injected
    ``parent_id``) plus the ``span_start``/``span_end`` envelope — the
    golden that pins the span schema and parent-id propagation.
    """
    site = SyntheticWebmail()
    recorder = Recorder(clock=SimClock(), spans=True)
    crawler = AjaxCrawler(
        site, CrawlerConfig(), clock=recorder.clock, cost_model=CostModel(), recorder=recorder
    )
    crawler.crawl([site.inbox_url])
    return recorder.events


#: corpus name -> (golden filename, trace producer).
CORPORA = {
    "webmail": ("webmail_trace.jsonl", webmail_trace),
    "youtube": ("youtube_trace.jsonl", youtube_trace),
    "webmail_spans": ("webmail_spans_trace.jsonl", webmail_spans_trace),
}


def golden_path(corpus: str) -> Path:
    return GOLDEN_DIR / CORPORA[corpus][0]


def current_lines(corpus: str) -> list[str]:
    """The freshly produced, normalized trace of one corpus."""
    events = CORPORA[corpus][1]()
    return normalize_lines(
        to_jsonl(events).splitlines(), drop_fields=ALLOWED_DRIFT_FIELDS
    )


def verify(corpus: str) -> list[str]:
    """Diff a fresh crawl against the checked-in golden.

    Returns the problem lines (empty = match).
    """
    path = golden_path(corpus)
    if not path.exists():
        return [f"golden trace missing: {path} (run --regen and commit it)"]
    expected = normalize_lines(
        path.read_text(encoding="utf-8").splitlines(),
        drop_fields=ALLOWED_DRIFT_FIELDS,
    )
    return diff_traces(expected, current_lines(corpus))


def regenerate(corpus: str) -> Path:
    """Overwrite one golden trace with a fresh crawl's canonical output."""
    path = golden_path(corpus)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(current_lines(corpus)) + "\n", encoding="utf-8")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.goldens",
        description="Verify or regenerate the golden crawl traces.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--verify", action="store_true", help="diff against goldens")
    mode.add_argument("--regen", action="store_true", help="rewrite the goldens")
    parser.add_argument(
        "--corpus", choices=sorted(CORPORA), action="append", default=None,
        help="limit to one corpus (default: all)",
    )
    args = parser.parse_args(argv)
    corpora = args.corpus or sorted(CORPORA)
    failed = False
    for corpus in corpora:
        if args.regen:
            path = regenerate(corpus)
            print(f"{corpus}: regenerated {path}")
            continue
        problems = verify(corpus)
        if problems:
            failed = True
            print(f"{corpus}: TRACE MISMATCH against {golden_path(corpus)}")
            for line in problems:
                print(f"  {line}")
            print(
                "  (if this change is intentional: "
                "python -m repro.obs.goldens --regen and commit)"
            )
        else:
            print(f"{corpus}: trace matches golden ({golden_path(corpus).name})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
