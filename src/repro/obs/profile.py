"""Profiling on top of span trees: where did the crawl's budget go?

Chapter 7 reasons in aggregates (states/sec, requests saved, N-line
speedup); this module answers the *inside* questions.  Three outputs,
all derived from a :class:`~repro.obs.spans.SpanTree`:

* :func:`profile_components` — per-span-kind attribution of inclusive/
  exclusive virtual time plus the network bytes and calls charged by
  point events inside each kind (``page_fetch``/``xhr_call``).

* :func:`folded_stacks` / :func:`to_speedscope` — flamegraph exports.
  Folded stacks are the ``flamegraph.pl`` input format (one
  ``root;child;leaf <weight>`` line per unique stack, weights in
  integer microseconds of *exclusive* time); speedscope JSON is the
  evented format, one profile per root span, because per-partition
  clock rebinds make timestamps comparable only within a root.

* :func:`critical_path` / :func:`critical_path_report` — replay of the
  :class:`~repro.parallel.MPAjaxCrawler` earliest-free-line scheduler
  over per-partition durations: per-line finish times, the makespan,
  the straggler partition and its makespan share, and the skew ratio
  (max/mean duration).  This is the quantitative answer to "why was
  the four-line speedup only ~27%?" (Figure 7.8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.obs.events import (
    HOTNODE_CACHE_HIT,
    HOTNODE_CACHE_MISS,
    PAGE_FETCH,
    TraceEvent,
    XHR_CALL,
)
from repro.obs.spans import Span, SpanTree

# -- per-component attribution -------------------------------------------------------


@dataclass
class ComponentRow:
    """Aggregate over every span of one kind."""

    kind: str
    count: int = 0
    inclusive_ms: float = 0.0
    exclusive_ms: float = 0.0
    network_bytes: int = 0
    network_calls: int = 0
    errors: int = 0


def profile_components(tree: SpanTree) -> list[ComponentRow]:
    """Per-kind time/network attribution, sorted by exclusive time."""
    rows: dict[str, ComponentRow] = {}
    for span in tree.walk():
        row = rows.setdefault(span.kind, ComponentRow(kind=span.kind))
        row.count += 1
        row.inclusive_ms += span.inclusive_ms
        row.exclusive_ms += span.exclusive_ms
        if span.error:
            row.errors += 1
        for event in span.events:
            if event.kind in (PAGE_FETCH, XHR_CALL):
                row.network_calls += 1
                row.network_bytes += int(event.fields.get("bytes", 0))
    return sorted(rows.values(), key=lambda r: (-r.exclusive_ms, r.kind))


def format_component_table(rows: Iterable[ComponentRow]) -> str:
    """Fixed-width text table of the component profile."""
    header = (
        f"{'component':<14} {'count':>6} {'incl ms':>12} {'excl ms':>12} "
        f"{'net calls':>9} {'net bytes':>10} {'errors':>6}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.kind:<14} {row.count:>6} {row.inclusive_ms:>12.1f} "
            f"{row.exclusive_ms:>12.1f} {row.network_calls:>9} "
            f"{row.network_bytes:>10} {row.errors:>6}"
        )
    return "\n".join(lines)


# -- flamegraph exports --------------------------------------------------------------


def folded_stacks(tree: SpanTree) -> dict[str, int]:
    """Collapse the forest into ``flamegraph.pl`` folded-stack lines.

    Keys are ``;``-joined span labels root-first; values are integer
    microseconds of the leaf span's *exclusive* time (µs so short spans
    survive integer truncation).  Unclosed spans contribute nothing.
    """
    folded: dict[str, int] = {}

    def descend(span: Span, prefix: str) -> None:
        stack = f"{prefix};{span.label()}" if prefix else span.label()
        weight_us = int(round(span.exclusive_ms * 1000.0))
        if span.closed and weight_us > 0:
            folded[stack] = folded.get(stack, 0) + weight_us
        for child in span.children:
            descend(child, stack)

    for root in tree.roots:
        descend(root, "")
    return folded


def format_folded(folded: dict[str, int]) -> str:
    """One ``stack weight`` line per entry, sorted for determinism."""
    return "\n".join(f"{stack} {weight}" for stack, weight in sorted(folded.items()))


def to_speedscope(tree: SpanTree, name: str = "repro-trace") -> dict[str, Any]:
    """Export the forest as a speedscope-JSON document.

    Evented format, one profile per root span: per-partition clock
    rebinds reset timestamps between roots, so each root gets its own
    self-consistent timeline (unit: milliseconds).
    """
    frames: list[dict[str, str]] = []
    frame_index: dict[str, int] = {}

    def frame_of(span: Span) -> int:
        label = span.label()
        if label not in frame_index:
            frame_index[label] = len(frames)
            frames.append({"name": label})
        return frame_index[label]

    profiles: list[dict[str, Any]] = []
    for number, root in enumerate(tree.roots):
        events: list[dict[str, Any]] = []
        end_at = root.end_ms if root.end_ms is not None else root.start_ms

        def emit(span: Span) -> None:
            if not span.closed:
                return
            events.append({"type": "O", "frame": frame_of(span), "at": span.start_ms})
            for child in span.children:
                emit(child)
            events.append({"type": "C", "frame": frame_of(span), "at": span.end_ms})

        emit(root)
        profiles.append(
            {
                "type": "evented",
                "name": f"{name}#{number}:{root.label()}",
                "unit": "milliseconds",
                "startValue": root.start_ms,
                "endValue": end_at,
                "events": events,
            }
        )
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": profiles,
        "name": name,
        "exporter": "repro.obs.profile",
    }


# -- hot-node attribution ------------------------------------------------------------


@dataclass
class HotNodeRow:
    """Cache behaviour of one hot-node signature."""

    signature: str
    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


def hotnode_attribution(events: Iterable[TraceEvent]) -> list[HotNodeRow]:
    """Per-signature hit/miss table from the cache trace events."""
    rows: dict[str, HotNodeRow] = {}
    for event in events:
        if event.kind == HOTNODE_CACHE_HIT:
            signature = str(event.fields.get("signature", "?"))
            rows.setdefault(signature, HotNodeRow(signature)).hits += 1
        elif event.kind == HOTNODE_CACHE_MISS:
            signature = str(event.fields.get("signature", "?"))
            rows.setdefault(signature, HotNodeRow(signature)).misses += 1
    return sorted(rows.values(), key=lambda r: (-r.lookups, r.signature))


# -- critical path over process lines ------------------------------------------------


@dataclass(frozen=True)
class PartitionCost:
    """One partition's scheduled duration on a process line."""

    partition: int
    duration_ms: float


@dataclass
class CriticalPathReport:
    """Replay of the earliest-free-line scheduler over partition costs."""

    num_lines: int
    partitions: list[PartitionCost] = field(default_factory=list)
    #: Which line each partition landed on (parallel to ``partitions``).
    assignments: list[int] = field(default_factory=list)
    line_finish_ms: list[float] = field(default_factory=list)
    makespan_ms: float = 0.0
    #: The partition with the largest duration — the run's straggler.
    straggler_partition: int = 0
    straggler_duration_ms: float = 0.0
    #: The straggler's duration as a fraction of the makespan.
    straggler_share: float = 0.0
    #: max / mean partition duration (1.0 means perfectly balanced).
    skew: float = 0.0
    #: Partitions on the critical (makespan-defining) line, in order.
    critical_line_partitions: list[int] = field(default_factory=list)

    @property
    def critical_line(self) -> int:
        if not self.line_finish_ms:
            return 0
        return max(range(len(self.line_finish_ms)), key=lambda i: self.line_finish_ms[i])


def critical_path(costs: list[PartitionCost], num_lines: int) -> CriticalPathReport:
    """Schedule ``costs`` onto ``num_lines`` earliest-free lines.

    The replay is semantically identical to
    :meth:`MPAjaxCrawler.run_simulated`: partitions are taken in order,
    each landing on the line with the smallest accumulated time
    (``min`` breaks ties at the lowest index).
    """
    if num_lines < 1:
        raise ValueError("need at least one process line")
    line_times = [0.0] * num_lines
    per_line: list[list[int]] = [[] for _ in range(num_lines)]
    assignments: list[int] = []
    for cost in costs:
        line = min(range(num_lines), key=lambda i: line_times[i])
        line_times[line] += cost.duration_ms
        per_line[line].append(cost.partition)
        assignments.append(line)
    makespan = max(line_times) if costs else 0.0
    straggler = max(costs, key=lambda c: c.duration_ms) if costs else None
    durations = [c.duration_ms for c in costs]
    mean = sum(durations) / len(durations) if durations else 0.0
    report = CriticalPathReport(
        num_lines=num_lines,
        partitions=list(costs),
        assignments=assignments,
        line_finish_ms=line_times,
        makespan_ms=makespan,
        straggler_partition=straggler.partition if straggler else 0,
        straggler_duration_ms=straggler.duration_ms if straggler else 0.0,
        straggler_share=(straggler.duration_ms / makespan) if straggler and makespan else 0.0,
        skew=(max(durations) / mean) if durations and mean else 0.0,
    )
    report.critical_line_partitions = per_line[report.critical_line] if costs else []
    return report


def critical_path_report(run: Any) -> CriticalPathReport:
    """Critical-path analysis of a finished parallel run.

    ``run`` is duck-typed against
    :class:`~repro.parallel.ParallelRunResult`: it must expose
    ``partition_numbers``, ``partition_durations_ms`` and
    ``num_proc_lines`` (filled by both MPAjaxCrawler runners).
    """
    costs = [
        PartitionCost(partition=number, duration_ms=duration)
        for number, duration in zip(run.partition_numbers, run.partition_durations_ms)
    ]
    return critical_path(costs, run.num_proc_lines)


def critical_path_from_spans(tree: SpanTree, num_lines: int) -> CriticalPathReport:
    """Critical-path analysis from ``partition`` spans in a trace.

    Each partition's duration is its span's inclusive time (valid even
    across clock rebinds — inclusive time is within-root).  Startup
    overhead is not in the trace, so this is the network+CPU view.
    """
    costs = [
        PartitionCost(
            partition=int(span.fields.get("partition", 0)),
            duration_ms=span.inclusive_ms,
        )
        for span in tree.by_kind("partition")
    ]
    costs.sort(key=lambda c: c.partition)
    return critical_path(costs, num_lines)


def format_critical_path(report: CriticalPathReport) -> str:
    """Human-readable critical-path summary."""
    lines = [
        f"process lines : {report.num_lines}",
        f"partitions    : {len(report.partitions)}",
        f"makespan      : {report.makespan_ms:.1f} ms",
        f"line finishes : "
        + ", ".join(f"L{i}={t:.1f}" for i, t in enumerate(report.line_finish_ms)),
        f"critical line : L{report.critical_line} "
        f"(partitions {report.critical_line_partitions})",
        f"straggler     : partition {report.straggler_partition} "
        f"({report.straggler_duration_ms:.1f} ms, "
        f"{report.straggler_share:.1%} of makespan)",
        f"skew          : {report.skew:.2f}x (max/mean partition duration)",
    ]
    return "\n".join(lines)
