"""Rolling time-window aggregation over an injectable clock.

Cumulative counters answer "how many ever"; live operations needs "how
many *lately*".  A :class:`RollingCounter` / :class:`RollingSketch`
divides its window into a fixed ring of slots (default 12 slots over
60 s, i.e. 5 s resolution), writes into the slot the injected clock
says is current, and lazily expires slots that have rotated out — no
background thread, no timers, fully deterministic on a fake clock.

Reads can narrow to a ``horizon_s`` shorter than the full window: the
multi-window SLO burn-rate rules (:mod:`repro.obs.slo`) compare a
short-horizon rate against the long-horizon rate over the *same* ring.

Slot granularity is the resolution limit: a horizon is rounded up to
whole slots, and the freshest slot is always partially filled.  That
is the standard rolling-window trade (Prometheus ``rate()`` has the
same property) and is harmless for thresholded rules.

Both classes are lock-protected; serving handler threads write them
concurrently.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Iterator, Optional

from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch

#: Default window shape: 60 seconds in 5-second slots.
DEFAULT_WINDOW_S = 60.0
DEFAULT_SLOTS = 12


class _SlotRing:
    """The shared rotation machinery: a ring of (slot index, payload).

    Slot ``i`` covers clock seconds ``[i * slot_s, (i + 1) * slot_s)``.
    A payload is live while its slot index is within ``slots`` of the
    current one; anything older is expired lazily on access.
    """

    def __init__(
        self,
        window_s: float,
        slots: int,
        clock: Callable[[], float],
        factory: Callable[[], object],
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.window_s = float(window_s)
        self.slots = slots
        self.slot_s = self.window_s / slots
        self.clock = clock
        self._factory = factory
        #: position -> (slot index, payload); position = index % slots.
        self._ring: list[Optional[tuple[int, object]]] = [None] * slots

    def _index(self) -> int:
        return int(self.clock() // self.slot_s)

    def current(self) -> object:
        """The payload of the current slot (created/reset as needed)."""
        index = self._index()
        position = index % self.slots
        entry = self._ring[position]
        if entry is None or entry[0] != index:
            payload = self._factory()
            self._ring[position] = (index, payload)
            return payload
        return entry[1]

    def live(self, horizon_s: Optional[float] = None) -> Iterator[object]:
        """Payloads of the newest ``horizon_s`` worth of slots.

        ``None`` means the whole window.  The horizon rounds up to
        whole slots and is capped at the window length.
        """
        now_index = self._index()
        if horizon_s is None:
            span = self.slots
        else:
            if horizon_s <= 0:
                raise ValueError(f"horizon_s must be positive, got {horizon_s}")
            span = min(self.slots, max(1, math.ceil(horizon_s / self.slot_s)))
        for entry in self._ring:
            if entry is not None and now_index - span < entry[0] <= now_index:
                yield entry[1]

    def span_s(self, horizon_s: Optional[float] = None) -> float:
        """The seconds actually covered by :meth:`live` for a horizon."""
        if horizon_s is None:
            return self.window_s
        span = min(self.slots, max(1, math.ceil(horizon_s / self.slot_s)))
        return span * self.slot_s


class RollingCounter:
    """A windowed counter: totals and per-second rates that age out."""

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        slots: int = DEFAULT_SLOTS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._lock = threading.Lock()
        self._ring = _SlotRing(window_s, slots, clock, lambda: [0.0])

    @property
    def window_s(self) -> float:
        return self._ring.window_s

    def add(self, value: float = 1.0) -> None:
        with self._lock:
            cell = self._ring.current()
            cell[0] += value

    def total(self, horizon_s: Optional[float] = None) -> float:
        """Sum of additions within the horizon (default: whole window)."""
        with self._lock:
            return sum(cell[0] for cell in self._ring.live(horizon_s))

    def rate_per_s(self, horizon_s: Optional[float] = None) -> float:
        """Additions per second over the covered span."""
        with self._lock:
            total = sum(cell[0] for cell in self._ring.live(horizon_s))
            span = self._ring.span_s(horizon_s)
        return total / span if span > 0 else 0.0


class RollingSketch:
    """A windowed quantile sketch: one sub-sketch per slot, merged on read.

    The merge is the exact bucket-wise :meth:`QuantileSketch.merge`, so
    a windowed quantile is identical to a sketch fed only the window's
    observations — rotation never distorts, it only expires.
    """

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        slots: int = DEFAULT_SLOTS,
        clock: Callable[[], float] = time.monotonic,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
    ) -> None:
        self.relative_accuracy = relative_accuracy
        self._lock = threading.Lock()
        self._ring = _SlotRing(
            window_s,
            slots,
            clock,
            lambda: QuantileSketch(relative_accuracy=relative_accuracy),
        )

    @property
    def window_s(self) -> float:
        return self._ring.window_s

    def observe(self, value: float) -> None:
        with self._lock:
            self._ring.current().observe(value)

    def merged(self, horizon_s: Optional[float] = None) -> QuantileSketch:
        """A fresh sketch of everything live within the horizon."""
        merged = QuantileSketch(relative_accuracy=self.relative_accuracy)
        with self._lock:
            live = list(self._ring.live(horizon_s))
        for sketch in live:
            merged.merge(sketch)
        return merged

    def quantile(
        self, fraction: float, horizon_s: Optional[float] = None
    ) -> float:
        return self.merged(horizon_s).quantile(fraction)

    def count(self, horizon_s: Optional[float] = None) -> int:
        with self._lock:
            return sum(sketch.count for sketch in self._ring.live(horizon_s))

    def summary(self, horizon_s: Optional[float] = None) -> dict:
        """count/mean/min/max/p50/p95/p99 of the live observations."""
        return self.merged(horizon_s).summary()
