"""The metrics registry: counters, gauges and histograms with labels.

One :class:`MetricsRegistry` is the single source of truth for every
number the evaluation chapter reports: network counters
(:class:`~repro.net.stats.NetworkStats` is a thin attribute view over a
registry), crawl aggregates (:class:`~repro.crawler.metrics.CrawlReport`
books each page into one), cache behaviour, retry accounting.

Metrics are addressed by ``(name, sorted label items)``.  All mutators
take an internal lock so a registry may be shared across threads (the
``run_threaded`` scheduler).  Registries **merge**: folding the
per-partition registries of an :class:`~repro.parallel.MPAjaxCrawler`
run — in any order or grouping — yields exactly the registry a
single-process crawl of the same work would have produced.  The
property-based tests in ``tests/obs`` assert this associativity /
commutativity; it is what makes partitioned cost accounting trustworthy.

Merge semantics per instrument:

* counters add,
* gauges keep the maximum (the only order-insensitive choice that is
  also useful for high-water marks),
* histograms add bucket-wise (all registries share the same fixed
  bucket bounds, so the merge is exact, not approximate).
"""

from __future__ import annotations

import json
import threading
from typing import Iterator, Mapping, Optional, Sequence

#: (metric name, canonicalized labels) — the registry key.
MetricKey = tuple[str, tuple[tuple[str, str], ...]]

#: Default histogram bucket upper bounds (virtual ms / generic scale).
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
                   1000.0, 2500.0, 5000.0, 10000.0, float("inf"))


def _key(name: str, labels: Mapping[str, object]) -> MetricKey:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


class Histogram:
    """Fixed-bucket histogram; exact under merge."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                break
        self.count += 1
        self.sum += value

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for index, count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += count
        self.count += other.count
        self.sum += other.sum

    def to_dict(self) -> dict:
        return {
            "buckets": [b if b != float("inf") else "inf" for b in self.bounds],
            "counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Lock-protected counters/gauges/histograms, mergeable exactly."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[MetricKey, float] = {}
        self._gauges: dict[MetricKey, float] = {}
        self._histograms: dict[MetricKey, Histogram] = {}

    # -- mutation ---------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        """Add ``value`` to the counter ``name{labels}``."""
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge ``name{labels}`` (merge keeps the max)."""
        with self._lock:
            self._gauges[_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record ``value`` into the histogram ``name{labels}``."""
        key = _key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram()
            histogram.observe(value)

    # -- reads -------------------------------------------------------------------

    def counter(self, name: str, **labels: object) -> float:
        """Current value of one counter (0.0 when never incremented)."""
        return self._counters.get(_key(name, labels), 0.0)

    def gauge(self, name: str, **labels: object) -> Optional[float]:
        return self._gauges.get(_key(name, labels))

    def histogram(self, name: str, **labels: object) -> Optional[Histogram]:
        return self._histograms.get(_key(name, labels))

    def counters_named(self, name: str) -> Iterator[tuple[dict[str, str], float]]:
        """All label sets of counter ``name`` with their values."""
        for (metric, labels), value in list(self._counters.items()):
            if metric == name:
                yield dict(labels), value

    def labeled_values(self, name: str, label: str) -> dict[str, float]:
        """Counter ``name`` pivoted on one label (insertion-ordered)."""
        out: dict[str, float] = {}
        for labels, value in self.counters_named(name):
            if label in labels:
                out[labels[label]] = value
        return out

    # -- merge --------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (exact, order-insensitive
        up to float-addition rounding)."""
        with other._lock:
            counters = dict(other._counters)
            gauges = dict(other._gauges)
            histograms = {k: h for k, h in other._histograms.items()}
        with self._lock:
            for key, value in counters.items():
                self._counters[key] = self._counters.get(key, 0.0) + value
            for key, value in gauges.items():
                current = self._gauges.get(key)
                self._gauges[key] = value if current is None else max(current, value)
            for key, histogram in histograms.items():
                mine = self._histograms.get(key)
                if mine is None:
                    mine = self._histograms[key] = Histogram(histogram.bounds)
                mine.merge(histogram)

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """A canonical, JSON-able view (sorted keys; comparison-friendly)."""
        def render(key: MetricKey) -> str:
            name, labels = key
            if not labels:
                return name
            inner = ",".join(f"{k}={v}" for k, v in labels)
            return f"{name}{{{inner}}}"

        with self._lock:
            return {
                "counters": {render(k): v for k, v in sorted(self._counters.items())},
                "gauges": {render(k): v for k, v in sorted(self._gauges.items())},
                "histograms": {
                    render(k): h.to_dict() for k, h in sorted(self._histograms.items())
                },
            }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=2)
