"""The metrics registry: counters, gauges and histograms with labels.

One :class:`MetricsRegistry` is the single source of truth for every
number the evaluation chapter reports: network counters
(:class:`~repro.net.stats.NetworkStats` is a thin attribute view over a
registry), crawl aggregates (:class:`~repro.crawler.metrics.CrawlReport`
books each page into one), cache behaviour, retry accounting.

Metrics are addressed by ``(name, sorted label items)``.  All mutators
take an internal lock so a registry may be shared across threads (the
``run_threaded`` scheduler).  Registries **merge**: folding the
per-partition registries of an :class:`~repro.parallel.MPAjaxCrawler`
run — in any order or grouping — yields exactly the registry a
single-process crawl of the same work would have produced.  The
property-based tests in ``tests/obs`` assert this associativity /
commutativity; it is what makes partitioned cost accounting trustworthy.

Merge semantics per instrument:

* counters add,
* gauges keep the maximum (the only order-insensitive choice that is
  also useful for high-water marks),
* histograms add bucket-wise (all registries share the same fixed
  bucket bounds, so the merge is exact, not approximate).
"""

from __future__ import annotations

import json
import re
import threading
from typing import Iterator, Mapping, Optional, Sequence

#: (metric name, canonicalized labels) — the registry key.
MetricKey = tuple[str, tuple[tuple[str, str], ...]]

#: Default histogram bucket upper bounds (virtual ms / generic scale).
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
                   1000.0, 2500.0, 5000.0, 10000.0, float("inf"))

#: Wall-clock serving latency bounds: loopback cache hits are tens of
#: *micro*seconds, replay tails run to seconds.  The generic bounds
#: start at 1 ms, which collapsed every cache hit into one bucket.
SERVE_LATENCY_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
                         50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
                         float("inf"))

#: Per-metric histogram bounds.  Registering a name here changes which
#: bounds :meth:`MetricsRegistry.observe` uses when it first creates
#: that histogram; everything else (merge exactness, exposition,
#: snapshots) is bounds-agnostic.  Registration must happen at import
#: time so every registry in a process — and every partition registry
#: that will later merge — agrees on the bounds.
_METRIC_BUCKETS: dict[str, tuple[float, ...]] = {}


def register_buckets(name: str, bounds: Sequence[float]) -> None:
    """Pin the histogram bucket bounds used for metric ``name``."""
    bounds = tuple(bounds)
    if not bounds or list(bounds) != sorted(bounds):
        raise ValueError(f"bucket bounds must be ascending, got {bounds!r}")
    _METRIC_BUCKETS[name] = bounds


def bucket_bounds(name: str) -> tuple[float, ...]:
    """The bounds ``observe`` will use for ``name`` (default otherwise)."""
    return _METRIC_BUCKETS.get(name, DEFAULT_BUCKETS)


register_buckets("serve.request_ms", SERVE_LATENCY_BUCKETS)


def _key(name: str, labels: Mapping[str, object]) -> MetricKey:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


class Histogram:
    """Fixed-bucket histogram; exact under merge."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                break
        self.count += 1
        self.sum += value

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for index, count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += count
        self.count += other.count
        self.sum += other.sum

    def to_dict(self) -> dict:
        return {
            "buckets": [b if b != float("inf") else "inf" for b in self.bounds],
            "counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Lock-protected counters/gauges/histograms, mergeable exactly."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[MetricKey, float] = {}
        self._gauges: dict[MetricKey, float] = {}
        self._histograms: dict[MetricKey, Histogram] = {}

    # -- mutation ---------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        """Add ``value`` to the counter ``name{labels}``."""
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge ``name{labels}`` (merge keeps the max)."""
        with self._lock:
            self._gauges[_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record ``value`` into the histogram ``name{labels}``."""
        key = _key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram(
                    bucket_bounds(name)
                )
            histogram.observe(value)

    # -- reads -------------------------------------------------------------------

    def counter(self, name: str, **labels: object) -> float:
        """Current value of one counter (0.0 when never incremented)."""
        return self._counters.get(_key(name, labels), 0.0)

    def gauge(self, name: str, **labels: object) -> Optional[float]:
        return self._gauges.get(_key(name, labels))

    def histogram(self, name: str, **labels: object) -> Optional[Histogram]:
        return self._histograms.get(_key(name, labels))

    def counters_named(self, name: str) -> Iterator[tuple[dict[str, str], float]]:
        """All label sets of counter ``name`` with their values."""
        for (metric, labels), value in list(self._counters.items()):
            if metric == name:
                yield dict(labels), value

    def labeled_values(self, name: str, label: str) -> dict[str, float]:
        """Counter ``name`` pivoted on one label (insertion-ordered)."""
        out: dict[str, float] = {}
        for labels, value in self.counters_named(name):
            if label in labels:
                out[labels[label]] = value
        return out

    # -- merge --------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (exact, order-insensitive
        up to float-addition rounding)."""
        with other._lock:
            counters = dict(other._counters)
            gauges = dict(other._gauges)
            histograms = {k: h for k, h in other._histograms.items()}
        with self._lock:
            for key, value in counters.items():
                self._counters[key] = self._counters.get(key, 0.0) + value
            for key, value in gauges.items():
                current = self._gauges.get(key)
                self._gauges[key] = value if current is None else max(current, value)
            for key, histogram in histograms.items():
                mine = self._histograms.get(key)
                if mine is None:
                    mine = self._histograms[key] = Histogram(histogram.bounds)
                mine.merge(histogram)

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """A canonical, JSON-able view (sorted keys; comparison-friendly)."""
        def render(key: MetricKey) -> str:
            name, labels = key
            if not labels:
                return name
            inner = ",".join(f"{k}={v}" for k, v in labels)
            return f"{name}{{{inner}}}"

        with self._lock:
            return {
                "counters": {render(k): v for k, v in sorted(self._counters.items())},
                "gauges": {render(k): v for k, v in sorted(self._gauges.items())},
                "histograms": {
                    render(k): h.to_dict() for k, h in sorted(self._histograms.items())
                },
            }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=2)

    @classmethod
    def from_snapshot(cls, snapshot: Mapping) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` dict (CLI files).

        Histogram reconstruction is exact: the snapshot carries bounds,
        bucket counts and the sum, which is the whole state.
        """
        registry = cls()
        for rendered, value in snapshot.get("counters", {}).items():
            name, labels = _parse_rendered(rendered)
            registry.inc(name, value, **labels)
        for rendered, value in snapshot.get("gauges", {}).items():
            name, labels = _parse_rendered(rendered)
            registry.set_gauge(name, value, **labels)
        for rendered, data in snapshot.get("histograms", {}).items():
            name, labels = _parse_rendered(rendered)
            bounds = tuple(
                float("inf") if b == "inf" else float(b) for b in data["buckets"]
            )
            histogram = Histogram(bounds)
            histogram.bucket_counts = list(data["counts"])
            histogram.count = data["count"]
            histogram.sum = data["sum"]
            registry._histograms[_key(name, labels)] = histogram
        return registry

    # -- Prometheus text exposition ------------------------------------------------

    def to_prometheus(self) -> str:
        """Render the registry in Prometheus text-exposition format.

        Metric names are sanitized (``.`` and other illegal characters
        become ``_``), label values escaped per the spec (backslash,
        double quote, newline), histograms expand to cumulative
        ``_bucket{le=...}`` series plus ``_sum``/``_count``.  Output is
        deterministically sorted so it diffs cleanly across runs.
        """
        lines: list[str] = []
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())

        def by_name(items):
            groups: dict[str, list] = {}
            for (name, labels), value in items:
                groups.setdefault(name, []).append((labels, value))
            return sorted(groups.items())

        for name, series in by_name(counters):
            prom = _prom_name(name)
            lines.append(f"# HELP {prom} Counter {name!r} from the repro registry.")
            lines.append(f"# TYPE {prom} counter")
            for labels, value in series:
                lines.append(f"{prom}{_prom_labels(labels)} {_prom_value(value)}")
        for name, series in by_name(gauges):
            prom = _prom_name(name)
            lines.append(f"# HELP {prom} Gauge {name!r} from the repro registry.")
            lines.append(f"# TYPE {prom} gauge")
            for labels, value in series:
                lines.append(f"{prom}{_prom_labels(labels)} {_prom_value(value)}")
        for name, series in by_name(histograms):
            prom = _prom_name(name)
            lines.append(f"# HELP {prom} Histogram {name!r} from the repro registry.")
            lines.append(f"# TYPE {prom} histogram")
            for labels, histogram in series:
                cumulative = 0
                for bound, bucket in zip(histogram.bounds, histogram.bucket_counts):
                    cumulative += bucket
                    le = "+Inf" if bound == float("inf") else _prom_value(bound)
                    lines.append(
                        f"{prom}_bucket{_prom_labels(labels, extra=('le', le))} "
                        f"{cumulative}"
                    )
                if histogram.bounds and histogram.bounds[-1] != float("inf"):
                    lines.append(
                        f"{prom}_bucket{_prom_labels(labels, extra=('le', '+Inf'))} "
                        f"{histogram.count}"
                    )
                lines.append(
                    f"{prom}_sum{_prom_labels(labels)} {_prom_value(histogram.sum)}"
                )
                lines.append(f"{prom}_count{_prom_labels(labels)} {histogram.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _parse_rendered(rendered: str) -> tuple[str, dict[str, str]]:
    """Invert ``snapshot()``'s ``name{k=v,...}`` key rendering."""
    if "{" not in rendered:
        return rendered, {}
    name, _, inner = rendered.partition("{")
    inner = inner.rstrip("}")
    labels: dict[str, str] = {}
    for part in inner.split(","):
        if part:
            key, _, value = part.partition("=")
            labels[key] = value
    return name, labels


def _prom_name(name: str) -> str:
    """Sanitize a registry name into a legal Prometheus metric name."""
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_escape(value: str) -> str:
    """Escape a label value per the text-exposition spec."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _prom_labels(
    labels: tuple[tuple[str, str], ...], extra: Optional[tuple[str, str]] = None
) -> str:
    items = list(labels)
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    inner = ",".join(f'{_prom_name(k)}="{_prom_escape(str(v))}"' for k, v in items)
    return f"{{{inner}}}"


def _prom_value(value: float) -> str:
    """Render a sample value (integers without the trailing ``.0``).

    Non-finite values get the spellings the text-exposition format
    mandates (``+Inf`` / ``-Inf`` / ``NaN``) — ``int(value)`` on them
    raised, so a gauge legitimately set to infinity used to crash the
    whole ``/metrics`` render.
    """
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
