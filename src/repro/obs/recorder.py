"""The trace-event bus: a :class:`Recorder` stamps and collects events.

Design constraints, in order:

1. **Zero cost when disabled.**  Tracing is off by default; the crawl
   hot path must not pay for it.  Every instrumented component holds a
   recorder that defaults to :data:`NULL_RECORDER`, whose ``enabled``
   is False and whose :meth:`~NullRecorder.emit` returns immediately.
   Hot paths with expensive field construction guard on
   ``recorder.enabled`` first.  Crucially, the disabled path draws no
   randomness and charges no virtual time, so traced and untraced runs
   of the same seed produce byte-identical experiment outputs.

2. **Determinism.**  The sequence number is a lock-protected monotonic
   counter; timestamps come from the shared virtual clock.  A seeded
   crawl therefore yields the same canonical trace on every run.

3. **Bounded memory.**  Events go to a sink; the default in-memory sink
   keeps them all (tests, summaries), the JSONL sink streams them to a
   file for long crawls.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Optional, TextIO

from repro.clock import SimClock
from repro.obs.events import TraceEvent


class MemorySink:
    """Keeps every event in a list (the default sink)."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def write(self, event: TraceEvent) -> None:
        self.events.append(event)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class JsonlTraceSink:
    """Streams events to a JSONL file as they are emitted."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle: Optional[TextIO] = self.path.open("w", encoding="utf-8")

    def write(self, event: TraceEvent) -> None:
        if self._handle is None:
            raise ValueError(f"trace sink {self.path} already closed")
        self._handle.write(event.to_json() + "\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class Recorder:
    """An enabled trace bus bound to a virtual clock."""

    enabled = True

    def __init__(self, clock: Optional[SimClock] = None, sink: Optional[Any] = None) -> None:
        self.clock = clock
        self.sink = sink if sink is not None else MemorySink()
        self._seq = 0
        self._lock = threading.Lock()

    def bind_clock(self, clock: SimClock) -> None:
        """Late-bind the clock (components that create their own)."""
        if self.clock is None:
            self.clock = clock

    def rebind_clock(self, clock: SimClock) -> None:
        """Force a new clock (a worker starting a fresh partition)."""
        self.clock = clock

    def emit(self, kind: str, **fields: Any) -> TraceEvent:
        """Stamp and record one event; returns it (tests, chaining).

        ``kind``, ``seq`` and ``t_ms`` are reserved — they are the
        envelope, not payload field names.
        """
        with self._lock:
            seq = self._seq
            self._seq += 1
            t_ms = self.clock.now_ms if self.clock is not None else 0.0
            event = TraceEvent(seq=seq, t_ms=t_ms, kind=kind, fields=fields)
            self.sink.write(event)
        return event

    @property
    def events(self) -> list[TraceEvent]:
        """The recorded events (only for sinks that retain them)."""
        return getattr(self.sink, "events", [])

    def close(self) -> None:
        self.sink.close()


class NullRecorder:
    """The disabled bus: every emit is an immediate no-op."""

    enabled = False
    clock = None

    def emit(self, kind: str, **fields: Any) -> None:
        return None

    def bind_clock(self, clock: SimClock) -> None:
        return None

    def rebind_clock(self, clock: SimClock) -> None:
        return None

    @property
    def events(self) -> list[TraceEvent]:
        return []

    def close(self) -> None:
        return None


#: The shared disabled recorder every component defaults to.
NULL_RECORDER = NullRecorder()
