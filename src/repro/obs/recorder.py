"""The trace-event bus: a :class:`Recorder` stamps and collects events.

Design constraints, in order:

1. **Zero cost when disabled.**  Tracing is off by default; the crawl
   hot path must not pay for it.  Every instrumented component holds a
   recorder that defaults to :data:`NULL_RECORDER`, whose ``enabled``
   is False and whose :meth:`~NullRecorder.emit` returns immediately.
   Hot paths with expensive field construction guard on
   ``recorder.enabled`` first.  Crucially, the disabled path draws no
   randomness and charges no virtual time, so traced and untraced runs
   of the same seed produce byte-identical experiment outputs.

2. **Determinism.**  The sequence number is a lock-protected monotonic
   counter; timestamps come from the shared virtual clock.  A seeded
   crawl therefore yields the same canonical trace on every run.

3. **Bounded memory.**  Events go to a sink; the default in-memory sink
   keeps them all (tests, summaries), the JSONL sink streams them to a
   file for long crawls.

Spans
-----

``Recorder(spans=True)`` turns on the causal layer: ``with
recorder.span("page", url=...):`` emits a ``span_start`` event, pushes
the span onto a per-thread stack, and emits the matching ``span_end``
on exit.  While a span is open, every event emitted on the same thread
— point events included — carries its ``span_id`` as ``parent_id``, so
the flat JSONL stream reconstructs into a tree
(:class:`repro.obs.spans.SpanTree`).  The flag defaults to False so
span-free traces (and the golden corpora recorded before spans
existed) stay byte-identical.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, Optional, TextIO

from repro.clock import SimClock
from repro.obs.events import SPAN_END, SPAN_START, TraceEvent


class MemorySink:
    """Keeps every event in a list (the default sink)."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def write(self, event: TraceEvent) -> None:
        self.events.append(event)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class JsonlTraceSink:
    """Streams events to a JSONL file as they are emitted.

    Usable as a context manager so a crawl that raises mid-run still
    flushes and closes the file — otherwise buffered events are lost
    with the interpreter's stdio teardown.

    One sink may be shared by several recorders on several threads (the
    threaded crawl backend hands every partition recorder the same
    file): a write lock serializes whole lines, so concurrent writers
    interleave *events*, never bytes — every line stays valid JSON.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle: Optional[TextIO] = self.path.open("w", encoding="utf-8")
        self._lock = threading.Lock()

    def write(self, event: TraceEvent) -> None:
        line = event.to_json() + "\n"
        with self._lock:
            if self._handle is None:
                raise ValueError(f"trace sink {self.path} already closed")
            self._handle.write(line)

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()


class _SpanHandle:
    """One open span: context manager + late-field annotation.

    The handle carries fields destined for the ``span_end`` event
    (results known only at exit, e.g. ``states=7``); ``annotate`` adds
    them while the span is open.
    """

    __slots__ = ("_recorder", "kind", "span_id", "_end_fields")

    def __init__(self, recorder: "Recorder", kind: str, span_id: int) -> None:
        self._recorder = recorder
        self.kind = kind
        self.span_id = span_id
        self._end_fields: dict[str, Any] = {}

    def annotate(self, **fields: Any) -> None:
        """Attach fields to the eventual ``span_end`` event."""
        self._end_fields.update(fields)

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None:
            self._end_fields["error"] = True
        self._recorder._end_span(self, self._end_fields)


class _NullSpan:
    """The span handle of a disabled (or spans-off) recorder."""

    __slots__ = ()
    kind = ""
    span_id = -1

    def annotate(self, **fields: Any) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        return None


#: Shared no-op span handle — one allocation for every disabled span.
NULL_SPAN = _NullSpan()


class Recorder:
    """An enabled trace bus bound to a virtual clock."""

    enabled = True

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        sink: Optional[Any] = None,
        spans: bool = False,
        wall_clock: bool = False,
    ) -> None:
        self.clock = clock
        self.sink = sink if sink is not None else MemorySink()
        #: Whether the causal span layer is on.  Off by default so
        #: span-free traces stay byte-identical to earlier builds.
        self.spans = spans
        #: Whether events also carry ``wall_ms`` — real elapsed ms since
        #: the recorder was created, alongside the virtual ``t_ms``.
        #: Off by default: wall time is nondeterministic, so it never
        #: appears in golden traces or parity comparisons.
        self.wall_clock = wall_clock
        self._wall_start = time.perf_counter()
        self._seq = 0
        self._span_ids = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    def bind_clock(self, clock: SimClock) -> None:
        """Late-bind the clock (components that create their own)."""
        if self.clock is None:
            self.clock = clock

    def rebind_clock(self, clock: SimClock) -> None:
        """Force a new clock (a worker starting a fresh partition)."""
        self.clock = clock

    # -- span protocol -------------------------------------------------------------

    def _span_stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, kind: str, **fields: Any) -> Any:
        """Open a causal span (context manager).

        Emits ``span_start`` (parented to the enclosing span, if any),
        pushes the span id on this thread's stack so nested events and
        spans pick it up as ``parent_id``, and emits ``span_end`` on
        exit.  With ``spans`` off this is a shared no-op handle.
        """
        if not self.spans:
            return NULL_SPAN
        with self._lock:
            span_id = self._span_ids
            self._span_ids += 1
        handle = _SpanHandle(self, kind, span_id)
        # The start event is emitted *before* the push, so its own
        # parent_id is the enclosing span — then the push makes this
        # span the parent of everything inside it.
        self.emit(SPAN_START, span=kind, span_id=span_id, **fields)
        self._span_stack().append(span_id)
        return handle

    def _end_span(self, handle: _SpanHandle, fields: dict[str, Any]) -> None:
        stack = self._span_stack()
        # Pop before emitting so span_end parents to the *enclosing*
        # span, mirroring span_start.
        if stack and stack[-1] == handle.span_id:
            stack.pop()
        elif handle.span_id in stack:  # pragma: no cover - defensive
            stack.remove(handle.span_id)
        self.emit(SPAN_END, span=handle.kind, span_id=handle.span_id, **fields)

    def emit(self, kind: str, **fields: Any) -> TraceEvent:
        """Stamp and record one event; returns it (tests, chaining).

        ``kind``, ``seq`` and ``t_ms`` are reserved — they are the
        envelope, not payload field names.  With spans on, events
        emitted inside an open span gain its id as ``parent_id``.
        """
        if self.spans and "parent_id" not in fields:
            stack = self._span_stack()
            if stack:
                fields["parent_id"] = stack[-1]
        if self.wall_clock:
            fields["wall_ms"] = round(
                (time.perf_counter() - self._wall_start) * 1000.0, 3
            )
        with self._lock:
            seq = self._seq
            self._seq += 1
            t_ms = self.clock.now_ms if self.clock is not None else 0.0
            event = TraceEvent(seq=seq, t_ms=t_ms, kind=kind, fields=fields)
            self.sink.write(event)
        return event

    @property
    def events(self) -> list[TraceEvent]:
        """The recorded events (only for sinks that retain them)."""
        return getattr(self.sink, "events", [])

    def close(self) -> None:
        self.sink.close()

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()


class NullRecorder:
    """The disabled bus: every emit is an immediate no-op."""

    enabled = False
    spans = False
    clock = None

    def emit(self, kind: str, **fields: Any) -> None:
        return None

    def span(self, kind: str, **fields: Any) -> _NullSpan:
        return NULL_SPAN

    def bind_clock(self, clock: SimClock) -> None:
        return None

    def rebind_clock(self, clock: SimClock) -> None:
        return None

    @property
    def events(self) -> list[TraceEvent]:
        return []

    def close(self) -> None:
        return None

    def __enter__(self) -> "NullRecorder":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        return None


#: The shared disabled recorder every component defaults to.
NULL_RECORDER = NullRecorder()
