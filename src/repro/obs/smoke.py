"""Profiling smoke test: ``python -m repro.obs.smoke``.

``make profile-smoke`` (a ``make check`` prerequisite) runs three
scenarios end-to-end through the span/profile/doctor stack and asserts
the doctor's verdicts, so a regression in span emission, tree building
or any diagnosis rule fails CI loudly:

1. **healthy** — a clean SimMail crawl with spans on must produce a
   valid span tree, non-empty folded stacks, and *zero* doctor
   findings.
2. **sick** — the same crawl against a fault-injected server (every
   AJAX folder load 5xxes until retries exhaust) must be diagnosed as
   a ``quarantine-storm``.
3. **skewed** — a deliberately unbalanced two-partition parallel run
   must be diagnosed as ``partition-skew`` and the critical-path
   report must blame the heavy partition.
"""

from __future__ import annotations

import sys

from repro.clock import CostModel, SimClock
from repro.crawler import AjaxCrawler, CrawlerConfig
from repro.net.faults import FaultInjector, FaultPlan, FaultRule
from repro.obs.doctor import diagnose, format_findings
from repro.obs.profile import critical_path_report, folded_stacks, profile_components
from repro.obs.recorder import Recorder
from repro.obs.spans import SpanTree
from repro.parallel import MPAjaxCrawler
from repro.sites import SiteConfig, SyntheticWebmail, SyntheticYouTube

#: Matches SimMail's AJAX folder-load endpoint.
FOLDER_PATTERN = "/folder"


def _crawl_webmail(server=None, config: CrawlerConfig | None = None) -> Recorder:
    site = SyntheticWebmail()
    recorder = Recorder(clock=SimClock(), spans=True)
    crawler = AjaxCrawler(
        server or site,
        config or CrawlerConfig(),
        clock=recorder.clock,
        cost_model=CostModel(),
        recorder=recorder,
    )
    crawler.crawl([site.inbox_url])
    return recorder


def smoke_healthy() -> None:
    recorder = _crawl_webmail()
    tree = SpanTree.from_events(recorder.events)
    assert tree.roots, "clean crawl produced no spans"
    assert not tree.problems, f"span nesting problems: {tree.problems}"
    stacks = folded_stacks(tree)
    assert stacks, "clean crawl produced no folded stacks"
    rows = profile_components(tree)
    kinds = {row.kind for row in rows}
    assert {"crawl", "page", "fire_event"} <= kinds, f"missing span kinds: {kinds}"
    findings = diagnose(events=recorder.events)
    assert not findings, (
        "doctor flagged a healthy crawl:\n" + format_findings(findings)
    )
    print(f"healthy: {len(tree)} spans, {len(stacks)} stacks, doctor clean")


def smoke_sick() -> None:
    site = SyntheticWebmail()
    plan = FaultPlan([FaultRule(FOLDER_PATTERN, rate=1.0)], seed=1)
    recorder = _crawl_webmail(
        server=FaultInjector(site, plan),
        config=CrawlerConfig(retry_max_attempts=2),
    )
    findings = diagnose(events=recorder.events)
    rules = {finding.rule for finding in findings}
    assert "quarantine-storm" in rules, (
        "doctor missed the quarantine storm:\n" + format_findings(findings)
    )
    print(f"sick: doctor diagnosed {sorted(rules)}")


def smoke_skewed() -> None:
    site = SyntheticYouTube(SiteConfig(num_videos=6, seed=7))
    crawler = MPAjaxCrawler(site, num_proc_lines=2)
    # One heavy partition vs. one single-URL partition: a textbook straggler.
    partitions = [
        [site.video_url(i) for i in range(5)],
        [site.video_url(5)],
    ]
    run = crawler.run_simulated(partitions)
    findings = diagnose(parallel=run)
    rules = {finding.rule for finding in findings}
    assert "partition-skew" in rules, (
        "doctor missed the straggler:\n" + format_findings(findings)
    )
    report = critical_path_report(run)
    assert report.straggler_partition == 1, (
        f"critical path blamed partition {report.straggler_partition}, expected 1"
    )
    assert report.makespan_ms == run.makespan_ms
    print(
        f"skewed: straggler partition {report.straggler_partition} "
        f"({report.straggler_share:.0%} of makespan), doctor diagnosed {sorted(rules)}"
    )


def main() -> int:
    smoke_healthy()
    smoke_sick()
    smoke_skewed()
    print("profile smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
