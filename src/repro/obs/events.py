"""Typed trace events — the vocabulary of the observability layer.

Every interesting thing the pipeline does is recorded as a
:class:`TraceEvent`: a *kind* from the closed vocabulary below, a
monotonic sequence number, the virtual-clock timestamp at emission, and
a flat dict of scalar fields.  Because the clock and every RNG in the
system are deterministic, the canonical serialization of a seeded
crawl's event stream is byte-stable — which is what makes golden-trace
regression testing possible (see :mod:`repro.obs.goldens`).

To add a new event kind: add the constant here, append it to
:data:`EVENT_KINDS`, emit it through a :class:`~repro.obs.recorder.Recorder`
at the instrumentation site, and regenerate the golden traces if the
new events appear in the golden corpora (``python -m repro.obs.goldens
--regen``).  docs/API.md carries the schema table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

# -- event kinds -------------------------------------------------------------------

#: A full page load completed successfully at the gateway.
PAGE_FETCH = "page_fetch"
#: A script performed one XMLHttpRequest ``send()`` (cache or network).
XHR_CALL = "xhr_call"
#: The hot-node cache answered an XHR without network traffic.
HOTNODE_CACHE_HIT = "hotnode_cache_hit"
#: The hot-node cache was consulted and missed (the XHR went out).
HOTNODE_CACHE_MISS = "hotnode_cache_miss"
#: The gateway re-attempted a failed request after backoff.
RETRY = "retry"
#: A request exhausted every allowed attempt (terminal failure).
REQUEST_FAILED = "request_failed"
#: The crawler fired one user event on a page state.
EVENT_FIRED = "event_fired"
#: A genuinely new application state joined the model.
STATE_DISCOVERED = "state_discovered"
#: A DOM change resolved to an already-known state (hash dedup).
STATE_DUPLICATE = "state_duplicate"
#: A DOM change merged into a near-duplicate canonical state (banded
#: LSH collapse; only emitted when ``near_dup_threshold`` is set).
STATE_COLLAPSED = "state_collapsed"
#: A new state was rejected by the per-page state cap (§4.3).
STATE_CAPPED = "state_capped"
#: A DOM hash pass rebuilt the whole tree (no cached subtree reused).
HASH_FULL = "hash_full"
#: A DOM hash pass reused cached subtree digests (dirty subtrees only).
HASH_INCREMENTAL = "hash_incremental"
#: The inverted file sorted/flushed its posting lists.
INDEX_FLUSH = "index_flush"
#: The segmented index froze a memtable into an on-disk segment.
SEGMENT_FLUSH = "segment_flush"
#: The segmented index merged a tier of segments into one (LSM).
COMPACTION = "compaction"
#: The search engine evaluated one query.
QUERY_EVAL = "query_eval"
#: The HTTP serving layer answered one request (endpoint, status,
#: cached, client — emitted once per request by ``repro.serve``).
SERVE_REQUEST = "serve_request"
#: A causal span opened (``span`` names the span kind, ``span_id`` is
#: unique per recorder, ``parent_id`` links to the enclosing span).
SPAN_START = "span_start"
#: The matching close of a span (same ``span_id``; ``error`` marks
#: spans unwound by an exception).
SPAN_END = "span_end"

#: The closed vocabulary, in documentation order.
EVENT_KINDS = (
    PAGE_FETCH,
    XHR_CALL,
    HOTNODE_CACHE_HIT,
    HOTNODE_CACHE_MISS,
    RETRY,
    REQUEST_FAILED,
    EVENT_FIRED,
    STATE_DISCOVERED,
    STATE_DUPLICATE,
    STATE_COLLAPSED,
    STATE_CAPPED,
    HASH_FULL,
    HASH_INCREMENTAL,
    INDEX_FLUSH,
    SEGMENT_FLUSH,
    COMPACTION,
    QUERY_EVAL,
    SERVE_REQUEST,
    SPAN_START,
    SPAN_END,
)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: what happened, when, and in what order."""

    #: Monotonic sequence number within one recorder (total order).
    seq: int
    #: Virtual-clock milliseconds at emission.
    t_ms: float
    #: One of :data:`EVENT_KINDS`.
    kind: str
    #: Flat scalar payload (strings, numbers, bools, None).
    fields: Mapping[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """The canonical one-line serialization (sorted keys, compact)."""
        payload = {"seq": self.seq, "t_ms": self.t_ms, "kind": self.kind}
        payload.update(self.fields)
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        payload = json.loads(line)
        seq = payload.pop("seq")
        t_ms = payload.pop("t_ms")
        kind = payload.pop("kind")
        return cls(seq=seq, t_ms=t_ms, kind=kind, fields=payload)


def to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Serialize an event stream as canonical JSONL (one event per line)."""
    return "\n".join(event.to_json() for event in events)


def from_jsonl(text: str) -> list[TraceEvent]:
    """Parse a canonical JSONL trace back into events."""
    return [TraceEvent.from_json(line) for line in text.splitlines() if line.strip()]
