"""Unified observability: the trace-event bus and the metrics registry.

``repro.obs`` is the substrate behind every number in the evaluation
chapter.  The :class:`Recorder` collects typed, virtual-clock-stamped
:class:`TraceEvent` objects from the whole pipeline (network gateway,
XHR/hot-node layer, crawler, index, query engine); the
:class:`MetricsRegistry` is the single home of counters/gauges/
histograms, mergeable exactly across crawl partitions.  Both are
zero-cost when disabled — the default :data:`NULL_RECORDER` does
nothing, and untraced runs stay byte-identical to pre-observability
builds.

See docs/API.md (event schema table) and ``repro.obs.goldens`` for the
golden-trace regression harness.
"""

from repro.obs.events import (
    COMPACTION,
    EVENT_KINDS,
    EVENT_FIRED,
    HASH_FULL,
    HASH_INCREMENTAL,
    HOTNODE_CACHE_HIT,
    HOTNODE_CACHE_MISS,
    INDEX_FLUSH,
    PAGE_FETCH,
    SEGMENT_FLUSH,
    QUERY_EVAL,
    REQUEST_FAILED,
    RETRY,
    SERVE_REQUEST,
    SPAN_END,
    SPAN_START,
    STATE_CAPPED,
    STATE_COLLAPSED,
    STATE_DISCOVERED,
    STATE_DUPLICATE,
    TraceEvent,
    XHR_CALL,
    from_jsonl,
    to_jsonl,
)
from repro.obs.doctor import (
    DEFAULT_DOCTOR_CONFIG,
    DoctorConfig,
    Finding,
    diagnose,
    format_findings,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    SERVE_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    bucket_bounds,
    register_buckets,
)
from repro.obs.reqtrace import RequestTrace, active_request, current_request_trace
from repro.obs.sketch import (
    DEFAULT_RELATIVE_ACCURACY,
    QuantileSketch,
    merge_sketches,
    nearest_rank,
)
from repro.obs.slo import (
    BURN_RATE_RULE,
    DEFAULT_BURN_RULES,
    SLO,
    BurnRateRule,
    SLOTracker,
    burn_rate,
)
from repro.obs.window import RollingCounter, RollingSketch
from repro.obs.profile import (
    ComponentRow,
    CriticalPathReport,
    PartitionCost,
    critical_path,
    critical_path_from_spans,
    critical_path_report,
    folded_stacks,
    format_component_table,
    format_critical_path,
    format_folded,
    hotnode_attribution,
    profile_components,
    to_speedscope,
)
from repro.obs.recorder import (
    JsonlTraceSink,
    MemorySink,
    NULL_RECORDER,
    NULL_SPAN,
    NullRecorder,
    Recorder,
)
from repro.obs.spans import Span, SpanNestingError, SpanTree, format_span_tree
from repro.obs.trace import (
    diff_traces,
    format_summary,
    merge_partition_traces,
    normalize_lines,
    summarize,
    summarize_jsonl,
)

__all__ = [
    "TraceEvent",
    "EVENT_KINDS",
    "PAGE_FETCH",
    "XHR_CALL",
    "HOTNODE_CACHE_HIT",
    "HOTNODE_CACHE_MISS",
    "RETRY",
    "REQUEST_FAILED",
    "EVENT_FIRED",
    "STATE_DISCOVERED",
    "STATE_DUPLICATE",
    "STATE_COLLAPSED",
    "STATE_CAPPED",
    "HASH_FULL",
    "HASH_INCREMENTAL",
    "INDEX_FLUSH",
    "SEGMENT_FLUSH",
    "COMPACTION",
    "QUERY_EVAL",
    "SERVE_REQUEST",
    "SPAN_START",
    "SPAN_END",
    "to_jsonl",
    "from_jsonl",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "NULL_SPAN",
    "MemorySink",
    "JsonlTraceSink",
    "MetricsRegistry",
    "Histogram",
    "DEFAULT_BUCKETS",
    "SERVE_LATENCY_BUCKETS",
    "register_buckets",
    "bucket_bounds",
    "QuantileSketch",
    "merge_sketches",
    "nearest_rank",
    "DEFAULT_RELATIVE_ACCURACY",
    "RollingCounter",
    "RollingSketch",
    "SLO",
    "SLOTracker",
    "BurnRateRule",
    "DEFAULT_BURN_RULES",
    "BURN_RATE_RULE",
    "burn_rate",
    "RequestTrace",
    "current_request_trace",
    "active_request",
    "normalize_lines",
    "merge_partition_traces",
    "diff_traces",
    "summarize",
    "summarize_jsonl",
    "format_summary",
    "Span",
    "SpanTree",
    "SpanNestingError",
    "format_span_tree",
    "ComponentRow",
    "profile_components",
    "format_component_table",
    "folded_stacks",
    "format_folded",
    "to_speedscope",
    "hotnode_attribution",
    "PartitionCost",
    "CriticalPathReport",
    "critical_path",
    "critical_path_report",
    "critical_path_from_spans",
    "format_critical_path",
    "DoctorConfig",
    "DEFAULT_DOCTOR_CONFIG",
    "Finding",
    "diagnose",
    "format_findings",
]
