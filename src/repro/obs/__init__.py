"""Unified observability: the trace-event bus and the metrics registry.

``repro.obs`` is the substrate behind every number in the evaluation
chapter.  The :class:`Recorder` collects typed, virtual-clock-stamped
:class:`TraceEvent` objects from the whole pipeline (network gateway,
XHR/hot-node layer, crawler, index, query engine); the
:class:`MetricsRegistry` is the single home of counters/gauges/
histograms, mergeable exactly across crawl partitions.  Both are
zero-cost when disabled — the default :data:`NULL_RECORDER` does
nothing, and untraced runs stay byte-identical to pre-observability
builds.

See docs/API.md (event schema table) and ``repro.obs.goldens`` for the
golden-trace regression harness.
"""

from repro.obs.events import (
    EVENT_KINDS,
    EVENT_FIRED,
    HASH_FULL,
    HASH_INCREMENTAL,
    HOTNODE_CACHE_HIT,
    HOTNODE_CACHE_MISS,
    INDEX_FLUSH,
    PAGE_FETCH,
    QUERY_EVAL,
    REQUEST_FAILED,
    RETRY,
    STATE_CAPPED,
    STATE_DISCOVERED,
    STATE_DUPLICATE,
    TraceEvent,
    XHR_CALL,
    from_jsonl,
    to_jsonl,
)
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.obs.recorder import (
    JsonlTraceSink,
    MemorySink,
    NULL_RECORDER,
    NullRecorder,
    Recorder,
)
from repro.obs.trace import (
    diff_traces,
    format_summary,
    normalize_lines,
    summarize,
    summarize_jsonl,
)

__all__ = [
    "TraceEvent",
    "EVENT_KINDS",
    "PAGE_FETCH",
    "XHR_CALL",
    "HOTNODE_CACHE_HIT",
    "HOTNODE_CACHE_MISS",
    "RETRY",
    "REQUEST_FAILED",
    "EVENT_FIRED",
    "STATE_DISCOVERED",
    "STATE_DUPLICATE",
    "STATE_CAPPED",
    "HASH_FULL",
    "HASH_INCREMENTAL",
    "INDEX_FLUSH",
    "QUERY_EVAL",
    "to_jsonl",
    "from_jsonl",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "MemorySink",
    "JsonlTraceSink",
    "MetricsRegistry",
    "Histogram",
    "DEFAULT_BUCKETS",
    "normalize_lines",
    "diff_traces",
    "summarize",
    "summarize_jsonl",
    "format_summary",
]
