"""SLO specs, error-budget accounting and multi-window burn-rate rules.

An :class:`SLO` names an objective over a budget window: either
**availability** ("99.9% of requests succeed") or **latency** ("99% of
requests answer under 250 ms").  Both reduce to the same bookkeeping —
every request is *good* or *bad*, and the error budget is the bad
fraction the objective tolerates: ``budget = 1 - objective``.

The **burn rate** over a horizon is how fast that budget is being
spent::

    burn = (bad / total) / (1 - objective)

Burn 1.0 spends exactly the budget over the window; burn 14.4 on a
99.9% / 1 h budget exhausts it in ~4 minutes.  A
:class:`BurnRateRule` fires only when *both* a long and a short horizon
burn above its threshold — the long horizon proves the problem is
sustained, the short one proves it is still happening (the classic
multi-window alerting policy; a one-window rule either pages on blips
or keeps paging long after recovery).

:class:`SLOTracker` books requests into :class:`~repro.obs.window`
rolling counters on the injectable clock and renders violations as
:class:`~repro.obs.doctor.Finding` objects, so SLO alerts flow through
the exact pipeline (severity, signal, threshold, action, evidence) the
trace doctor already established.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs.doctor import Finding
from repro.obs.window import RollingCounter

#: Rule id carried by every burn-rate finding.
BURN_RATE_RULE = "slo-burn-rate"


@dataclass(frozen=True)
class SLO:
    """One service-level objective over a rolling budget window."""

    #: Stable identifier ("availability", "latency-p99", ...).
    name: str
    #: Target good-request ratio in [0, 1), e.g. 0.999.
    objective: float = 0.999
    #: When set, the SLO is a latency objective: a request is *bad* when
    #: it runs longer than this many milliseconds.  When None, the SLO
    #: is an availability objective: a request is bad when it fails
    #: (5xx / transport error).
    latency_ms: Optional[float] = None
    #: Budget window in seconds (also the rolling-window length).
    window_s: float = 3600.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.objective < 1.0:
            raise ValueError(
                f"objective must be in [0, 1), got {self.objective}"
            )
        if self.window_s <= 0:
            raise ValueError(f"window_s must be positive, got {self.window_s}")
        if self.latency_ms is not None and self.latency_ms <= 0:
            raise ValueError(
                f"latency_ms must be positive, got {self.latency_ms}"
            )

    @property
    def budget(self) -> float:
        """The tolerated bad-request fraction: ``1 - objective``."""
        return 1.0 - self.objective

    def is_bad(self, ok: bool, latency_ms: float) -> bool:
        """Whether one request spends budget under this objective."""
        if self.latency_ms is not None:
            return latency_ms > self.latency_ms
        return not ok


@dataclass(frozen=True)
class BurnRateRule:
    """Fire when burn exceeds ``max_burn`` over both horizons."""

    #: The sustained horizon, seconds (capped at the SLO window).
    long_s: float = 3600.0
    #: The still-happening horizon, seconds.
    short_s: float = 300.0
    #: Burn-rate threshold both horizons must exceed.
    max_burn: float = 14.4
    severity: str = "critical"
    #: Minimum requests in the short horizon before the rule may fire
    #: (a 1-request sample is noise, not an outage).
    min_requests: int = 10


#: The standard fast-burn / slow-burn pair (Google SRE workbook numbers,
#: scaled to a 1 h budget window): 14.4x spends a day's budget in 100
#: minutes, 6x in 4 hours.
DEFAULT_BURN_RULES = (
    BurnRateRule(long_s=3600.0, short_s=300.0, max_burn=14.4,
                 severity="critical"),
    BurnRateRule(long_s=3600.0, short_s=900.0, max_burn=6.0,
                 severity="warning"),
)


def burn_rate(bad: float, total: float, objective: float) -> float:
    """Budget-spend speed: observed bad ratio over the tolerated one."""
    if total <= 0:
        return 0.0
    return (bad / total) / max(1.0 - objective, 1e-12)


class SLOTracker:
    """Books requests against one SLO; reports burn rates and findings."""

    def __init__(
        self,
        slo: SLO,
        clock: Callable[[], float] = time.monotonic,
        rules: tuple[BurnRateRule, ...] = DEFAULT_BURN_RULES,
        slots: int = 60,
    ) -> None:
        self.slo = slo
        self.rules = rules
        self._total = RollingCounter(slo.window_s, slots, clock)
        self._bad = RollingCounter(slo.window_s, slots, clock)

    def record(self, ok: bool, latency_ms: float) -> bool:
        """Book one request; returns whether it spent budget."""
        bad = self.slo.is_bad(ok, latency_ms)
        self._total.add(1.0)
        if bad:
            self._bad.add(1.0)
        return bad

    def burn(self, horizon_s: Optional[float] = None) -> float:
        """The burn rate over a horizon (None = whole window)."""
        return burn_rate(
            self._bad.total(horizon_s),
            self._total.total(horizon_s),
            self.slo.objective,
        )

    def status(self) -> dict:
        """A JSON-able snapshot for ``/debug/slo``."""
        total = self._total.total()
        bad = self._bad.total()
        budget_requests = total * self.slo.budget
        return {
            "name": self.slo.name,
            "objective": self.slo.objective,
            "kind": "latency" if self.slo.latency_ms is not None
            else "availability",
            "latency_ms": self.slo.latency_ms,
            "window_s": self.slo.window_s,
            "total": total,
            "bad": bad,
            "bad_ratio": bad / total if total else 0.0,
            # Fraction of the window's error budget already spent
            # (>= 1.0 means the budget is gone).
            "budget_spent": (
                bad / budget_requests if budget_requests > 0 else 0.0
            ),
            "burn": {
                f"{rule.short_s:g}s/{rule.long_s:g}s": {
                    "short": self.burn(rule.short_s),
                    "long": self.burn(rule.long_s),
                    "max_burn": rule.max_burn,
                }
                for rule in self.rules
            },
        }

    def findings(self) -> list[Finding]:
        """Burn-rate violations as doctor findings (empty when healthy)."""
        findings: list[Finding] = []
        for rule in self.rules:
            short_total = self._total.total(rule.short_s)
            if short_total < rule.min_requests:
                continue
            short_burn = self.burn(rule.short_s)
            long_burn = self.burn(rule.long_s)
            if short_burn < rule.max_burn or long_burn < rule.max_burn:
                continue
            findings.append(
                Finding(
                    rule=BURN_RATE_RULE,
                    severity=rule.severity,
                    message=(
                        f"SLO {self.slo.name!r} burning "
                        f"{short_burn:.1f}x budget over {rule.short_s:g}s "
                        f"and {long_burn:.1f}x over {rule.long_s:g}s "
                        f"(threshold {rule.max_burn:g}x)"
                    ),
                    signal=min(short_burn, long_burn),
                    threshold=rule.max_burn,
                    action=(
                        "the error budget will exhaust well before the "
                        "window closes: shed load, roll back the last "
                        "change, or check the origin/index health"
                    ),
                    evidence={
                        "slo": self.slo.name,
                        "objective": self.slo.objective,
                        "short_s": rule.short_s,
                        "long_s": rule.long_s,
                        "short_burn": short_burn,
                        "long_burn": long_burn,
                        "short_requests": short_total,
                    },
                )
            )
        return findings
