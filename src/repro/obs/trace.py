"""Trace post-processing: normalization, diffing and summaries.

Golden-trace regression testing compares the canonical JSONL of a
seeded crawl against a checked-in file.  The comparison goes through a
*normalizer* so that intentionally unstable fields (none by default —
the whole pipeline is deterministic) can be masked without weakening
the rest of the trace, and through :func:`diff_traces`, which renders a
readable event-level diff instead of a wall of bytes.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.obs.events import TraceEvent, from_jsonl


def merge_partition_traces(
    traces: Mapping[int, Sequence[TraceEvent]],
) -> list[TraceEvent]:
    """One canonical stream from per-partition recorder outputs.

    A parallel crawl gives every partition its own recorder (one shared
    sequence across concurrent workers would make ``seq`` depend on
    thread interleaving).  This merge makes the combined stream
    deterministic again: partitions concatenate in ascending partition
    number, each partition's events keep their internal emission order,
    and ``seq`` is renumbered globally — so the merged trace of a
    seeded crawl is identical whichever backend (and however many
    threads) produced it.  Nondeterministic ``wall_ms`` annotations are
    dropped for the same reason.
    """
    merged: list[TraceEvent] = []
    seq = 0
    span_offset = 0
    for partition in sorted(traces):
        max_span_id = -1
        for event in traces[partition]:
            fields = {k: v for k, v in event.fields.items() if k != "wall_ms"}
            # Per-partition recorders each start span ids at 0; offset
            # them into disjoint ranges so the merged stream looks like
            # one recorder produced it (span trees stay well-formed).
            for key in ("span_id", "parent_id"):
                if key in fields:
                    max_span_id = max(max_span_id, fields[key])
                    fields[key] = fields[key] + span_offset
            merged.append(
                TraceEvent(seq=seq, t_ms=event.t_ms, kind=event.kind, fields=fields)
            )
            seq += 1
        span_offset += max_span_id + 1
    return merged


def normalize_lines(
    lines: Iterable[str],
    drop_fields: Sequence[str] = (),
    round_floats: Optional[int] = 6,
) -> list[str]:
    """Canonicalize trace lines for comparison.

    ``drop_fields`` masks allowed-to-change fields (their values are
    replaced by ``"*"`` so presence is still asserted); ``round_floats``
    guards against float-repr drift across interpreter versions.
    """
    out = []
    for line in lines:
        if not line.strip():
            continue
        event = TraceEvent.from_json(line)
        fields = {}
        for name, value in event.fields.items():
            if name in drop_fields:
                fields[name] = "*"
            elif isinstance(value, float) and round_floats is not None:
                fields[name] = round(value, round_floats)
            else:
                fields[name] = value
        t_ms = round(event.t_ms, round_floats) if round_floats is not None else event.t_ms
        out.append(TraceEvent(event.seq, t_ms, event.kind, fields).to_json())
    return out


def diff_traces(
    expected: Sequence[str],
    actual: Sequence[str],
    context: int = 2,
    max_mismatches: int = 10,
) -> list[str]:
    """Readable event-level differences between two normalized traces.

    Returns an empty list when the traces match.  Each mismatch shows
    the event index, both lines, and a little surrounding context.
    """
    problems: list[str] = []
    if len(expected) != len(actual):
        problems.append(
            f"trace length differs: expected {len(expected)} events, got {len(actual)}"
        )
    mismatches = 0
    for index in range(min(len(expected), len(actual))):
        if expected[index] == actual[index]:
            continue
        mismatches += 1
        if mismatches > max_mismatches:
            problems.append("... further mismatches suppressed")
            break
        problems.append(f"event #{index} differs:")
        lo = max(0, index - context)
        for j in range(lo, index):
            problems.append(f"    = {expected[j]}")
        problems.append(f"  - expected: {expected[index]}")
        problems.append(f"  + actual:   {actual[index]}")
    if not problems and len(expected) != len(actual):  # pragma: no cover
        pass
    if len(expected) != len(actual) and mismatches <= max_mismatches:
        longer, label = (
            (expected, "missing from actual")
            if len(expected) > len(actual)
            else (actual, "unexpected extra")
        )
        start = min(len(expected), len(actual))
        for line in list(longer[start:])[:context + 1]:
            problems.append(f"  ! {label}: {line}")
    return problems


def summarize(events: Iterable[TraceEvent]) -> dict:
    """Aggregate an event stream into the numbers a human wants first."""
    counts: dict[str, int] = {}
    first_ms: Optional[float] = None
    last_ms = 0.0
    urls: dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
        if first_ms is None:
            first_ms = event.t_ms
        last_ms = max(last_ms, event.t_ms)
        url = event.fields.get("url")
        if url:
            urls[url] = urls.get(url, 0) + 1
    return {
        "events": sum(counts.values()),
        "by_kind": dict(sorted(counts.items())),
        "span_ms": (last_ms - first_ms) if first_ms is not None else 0.0,
        "distinct_urls": len(urls),
        "busiest_urls": sorted(urls.items(), key=lambda kv: (-kv[1], kv[0]))[:5],
    }


def summarize_jsonl(text: str) -> dict:
    return summarize(from_jsonl(text))


def format_summary(summary: dict) -> str:
    lines = [f"events:        {summary['events']}"]
    lines.append(f"span:          {summary['span_ms'] / 1000.0:.1f}s virtual")
    lines.append(f"distinct URLs: {summary['distinct_urls']}")
    lines.append("by kind:")
    for kind, count in summary["by_kind"].items():
        lines.append(f"  {kind:20s} {count}")
    if summary["busiest_urls"]:
        lines.append("busiest URLs:")
        for url, count in summary["busiest_urls"]:
            lines.append(f"  {count:6d}  {url}")
    return "\n".join(lines)
