"""Per-request deep tracing: a context-propagated trace object.

The serving tier wants to answer "what did request ``req-00000042`` do,
exactly?" — which cache outcome, how many query terms matched, and how
much of the on-disk index it touched (blocks decoded vs skipped: the
per-query read amplification).  Threading a trace argument through
``SearchService -> SearchEngine -> evaluate -> SegmentedIndex`` would
put a serving concern in every search signature, so the trace rides a
:mod:`contextvars` context variable instead: the service opens an
:func:`active_request` scope around the endpoint body, and any layer
below may cheaply ask :func:`current_request_trace` and annotate it.

``contextvars`` gives each handler thread its own binding, so
concurrent requests never see each other's traces.  Outside a scope
:func:`current_request_trace` returns ``None`` and every instrumented
layer skips a single attribute lookup — crawling, benchmarks and the
golden traces are untouched.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

_CURRENT: contextvars.ContextVar[Optional["RequestTrace"]] = (
    contextvars.ContextVar("repro_request_trace", default=None)
)


@dataclass
class RequestTrace:
    """Everything one request did, accumulated as it descends the stack."""

    request_id: str
    endpoint: str
    client: str = "-"
    #: Service clock seconds at admission (whatever clock the service
    #: injects — wall by default, fake in tests).
    started_s: float = 0.0
    status: int = 0
    duration_ms: float = 0.0
    #: Deterministically hash-selected for the sampled-trace ring.
    sampled: bool = False
    #: Free-form annotations from any layer (query, cached, terms, ...).
    fields: dict[str, Any] = field(default_factory=dict)
    #: Per-query index read-amplification, summed over conjunctions.
    blocks_decoded: int = 0
    blocks_skipped: int = 0
    postings_decoded: int = 0

    def annotate(self, **fields: Any) -> None:
        """Attach fields (later layers win on key collision)."""
        self.fields.update(fields)

    def add_index_stats(
        self, blocks_decoded: int, blocks_skipped: int, postings_decoded: int
    ) -> None:
        """Book one conjunction's block accounting onto this request."""
        self.blocks_decoded += blocks_decoded
        self.blocks_skipped += blocks_skipped
        self.postings_decoded += postings_decoded

    @property
    def decode_fraction(self) -> float:
        """Blocks decoded over blocks visited (1.0 = no skipping won)."""
        visited = self.blocks_decoded + self.blocks_skipped
        return self.blocks_decoded / visited if visited else 0.0

    def to_dict(self) -> dict:
        """The ``/debug/trace`` rendering."""
        data = {
            "request_id": self.request_id,
            "endpoint": self.endpoint,
            "client": self.client,
            "status": self.status,
            "duration_ms": self.duration_ms,
            "sampled": self.sampled,
            "fields": dict(self.fields),
        }
        if self.blocks_decoded or self.blocks_skipped or self.postings_decoded:
            data["index"] = {
                "blocks_decoded": self.blocks_decoded,
                "blocks_skipped": self.blocks_skipped,
                "postings_decoded": self.postings_decoded,
                "decode_fraction": self.decode_fraction,
            }
        return data


def current_request_trace() -> Optional[RequestTrace]:
    """The trace of the request this code runs under, if any."""
    return _CURRENT.get()


@contextmanager
def active_request(trace: RequestTrace) -> Iterator[RequestTrace]:
    """Bind ``trace`` as the current request for the enclosed body."""
    token = _CURRENT.set(trace)
    try:
        yield trace
    finally:
        _CURRENT.reset(token)
