"""A mergeable streaming quantile sketch (DDSketch-style).

The serving tier needs live percentiles: p50/p95/p99 latency over an
unbounded request stream, readable at any moment, mergeable across
load-test workers and rolling-window slots.  A sorted list (what the
load-test harness used post-hoc) is O(n) memory and cannot merge; a
fixed-bound histogram loses all resolution below its first bucket.

:class:`QuantileSketch` stores counts in logarithmic buckets: bucket
``k`` covers ``(gamma^(k-1), gamma^k]`` with
``gamma = (1 + a) / (1 - a)`` for a configured relative accuracy
``a``.  Every quantile estimate is therefore within ``a`` *relative*
error of the true value at the same nearest-rank position — 1% of a
0.3 ms cache hit and 1% of a 2 s replay alike, with a few hundred
buckets total.

Guarantees the tests pin down:

* **relative-error bound** — ``|quantile(q) - exact(q)| <= a * exact(q)``
  where ``exact`` is the nearest-rank value under the same rank rule as
  :func:`repro.serve.loadtest.percentile`;
* **exact merge** — merging is bucket-wise addition, so any split of a
  stream into sub-sketches, merged in any order or grouping, yields the
  byte-identical sketch of the whole stream (the
  :class:`~repro.obs.metrics.MetricsRegistry` merge property, lifted to
  quantiles);
* **serializable** — :meth:`to_dict`/:meth:`from_dict` round-trip the
  whole state exactly, like :class:`~repro.obs.metrics.Histogram`.
"""

from __future__ import annotations

import math
import threading
from typing import Mapping, Optional, Sequence

#: Default relative accuracy: estimates within 1% of the true value.
DEFAULT_RELATIVE_ACCURACY = 0.01

#: Values below this collapse into the zero bucket (sub-nanosecond
#: latencies are indistinguishable from zero for every consumer here).
MIN_TRACKED_VALUE = 1e-9


def nearest_rank(count: int, fraction: float) -> int:
    """The 0-based nearest-rank index used by every percentile here.

    Matches :func:`repro.serve.loadtest.percentile` on a sorted list:
    ``round(fraction * count) - 1``, clamped into ``[0, count - 1]``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    return min(count - 1, max(0, round(fraction * count) - 1))


class QuantileSketch:
    """Log-bucketed quantile sketch over non-negative values.

    Thread-safe: serving handler threads observe concurrently.
    """

    __slots__ = (
        "relative_accuracy",
        "_gamma",
        "_log_gamma",
        "_lock",
        "buckets",
        "zero_count",
        "count",
        "sum",
        "_min",
        "_max",
    )

    def __init__(
        self, relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY
    ) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        self.relative_accuracy = relative_accuracy
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._lock = threading.Lock()
        #: bucket index -> count; index k covers (gamma^(k-1), gamma^k].
        self.buckets: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = 0.0

    # -- ingest -------------------------------------------------------------------

    def bucket_key(self, value: float) -> int:
        """The bucket index holding ``value`` (>= MIN_TRACKED_VALUE)."""
        return math.ceil(math.log(value) / self._log_gamma)

    def observe(self, value: float) -> None:
        """Record one non-negative observation."""
        if value < 0:
            raise ValueError(f"sketch values must be >= 0, got {value}")
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if value < MIN_TRACKED_VALUE:
                self.zero_count += 1
            else:
                key = self.bucket_key(value)
                self.buckets[key] = self.buckets.get(key, 0) + 1

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` in; exact and order/grouping-insensitive."""
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                "cannot merge sketches with different relative accuracies "
                f"({self.relative_accuracy} vs {other.relative_accuracy})"
            )
        with other._lock:
            buckets = dict(other.buckets)
            zero_count = other.zero_count
            count = other.count
            total = other.sum
            other_min, other_max = other._min, other._max
        with self._lock:
            for key, bucket_count in buckets.items():
                self.buckets[key] = self.buckets.get(key, 0) + bucket_count
            self.zero_count += zero_count
            self.count += count
            self.sum += total
            self._min = min(self._min, other_min)
            self._max = max(self._max, other_max)

    # -- reads --------------------------------------------------------------------

    def quantile(self, fraction: float) -> float:
        """The value at nearest-rank ``fraction``, within relative error.

        Returns 0.0 for an empty sketch (mirrors ``percentile([])``).
        """
        with self._lock:
            if self.count == 0:
                if not 0.0 <= fraction <= 1.0:
                    raise ValueError(
                        f"fraction must be in [0, 1], got {fraction}"
                    )
                return 0.0
            rank = nearest_rank(self.count, fraction)
            if rank < self.zero_count:
                return 0.0
            seen = self.zero_count
            for key in sorted(self.buckets):
                seen += self.buckets[key]
                if rank < seen:
                    # Midpoint of (gamma^(k-1), gamma^k]: within
                    # relative_accuracy of anything in the bucket.
                    return 2.0 * self._gamma ** key / (self._gamma + 1.0)
            return self._max  # pragma: no cover - counts always add up

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        """Smallest observed value (0.0 when empty)."""
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max

    def __len__(self) -> int:
        return self.count

    def __bool__(self) -> bool:
        return True

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict:
        """Whole state, JSON-able; :meth:`from_dict` inverts exactly."""
        with self._lock:
            return {
                "relative_accuracy": self.relative_accuracy,
                "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
                "zero_count": self.zero_count,
                "count": self.count,
                "sum": self.sum,
                "min": self._min if self.count else None,
                "max": self._max,
            }

    @classmethod
    def from_dict(cls, data: Mapping) -> "QuantileSketch":
        sketch = cls(relative_accuracy=data["relative_accuracy"])
        sketch.buckets = {int(k): int(v) for k, v in data["buckets"].items()}
        sketch.zero_count = int(data["zero_count"])
        sketch.count = int(data["count"])
        sketch.sum = float(data["sum"])
        minimum = data.get("min")
        sketch._min = math.inf if minimum is None else float(minimum)
        sketch._max = float(data["max"])
        return sketch

    def summary(self, quantiles: Sequence[float] = (0.5, 0.95, 0.99)) -> dict:
        """The standard reporting block: count/mean/min/max + quantiles."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            **{f"p{100 * q:g}": self.quantile(q) for q in quantiles},
        }


def merge_sketches(
    sketches: Sequence[QuantileSketch],
    relative_accuracy: Optional[float] = None,
) -> QuantileSketch:
    """A fresh sketch holding the union of ``sketches``."""
    accuracy = relative_accuracy
    if accuracy is None:
        accuracy = (
            sketches[0].relative_accuracy
            if sketches
            else DEFAULT_RELATIVE_ACCURACY
        )
    merged = QuantileSketch(relative_accuracy=accuracy)
    for sketch in sketches:
        merged.merge(sketch)
    return merged
