"""Tree-walking evaluator for the JavaScript subset.

Feature set: closures, ``this`` binding on method calls, ``new`` with
host constructors, arrays/objects, string and array built-in methods,
``for``/``for-in``/``while`` loops, and short-circuit logic — everything
the synthetic AJAX pages (and the thesis' YouTube scripts) exercise.

Two pieces exist specifically for the crawler:

* a **call stack** of :class:`~repro.js.debugger.StackFrame` objects with
  function names and *actual argument values*, which the hot-node
  ``StackInfo`` mechanism inspects when ``XMLHttpRequest.open`` fires;
* an attachable :class:`~repro.js.debugger.Debugger` whose ``on_enter``
  may intercept a call and return a cached result without executing the
  body (the Rhino-debugger trick of section 4.4.2).

The interpreter counts evaluation steps so the browser can charge
virtual time for script execution, and aborts scripts that exceed
``max_steps`` (the thesis' guard against infinite loops, section 3.2).
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.errors import JsReferenceError, JsRuntimeError, JsSyntaxError, JsTypeError
from repro.js import ast
from repro.obs import NULL_RECORDER
from repro.js.debugger import CallStack, Debugger, StackFrame
from repro.js.environment import Environment
from repro.js.parser import parse_expression, parse_program
from repro.js.values import (
    HostConstructor,
    HostObject,
    JSArray,
    JSFunction,
    JSObject,
    NativeFunction,
    UNDEFINED,
    is_callable,
    is_truthy,
    to_number,
    to_string,
    type_of,
)


class JsStepLimitError(JsRuntimeError):
    """A script exceeded the interpreter's step budget (infinite loop guard)."""


class JsThrownValue(JsRuntimeError):
    """A script-level ``throw`` whose value no script handler caught."""

    def __init__(self, value: Any) -> None:
        super().__init__(f"uncaught JavaScript exception: {to_string(value)}")
        self.value = value


class _Return(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class Interpreter:
    """Evaluates parsed programs against a global environment."""

    #: Script call-stack ceiling.  Each JS frame costs ~15 Python frames
    #: (eval -> invoke -> run_frame -> exec chains), so this must stay
    #: well under ``sys.getrecursionlimit()`` for runaway recursion to
    #: surface as a catchable JsRuntimeError (the engines' "maximum call
    #: stack size exceeded") rather than a Python RecursionError.
    MAX_CALL_DEPTH = 32

    def __init__(self, max_steps: int = 2_000_000, recorder=NULL_RECORDER) -> None:
        self.global_env = Environment()
        self.call_stack = CallStack()
        self.max_steps = max_steps
        self.steps = 0
        self._debugger: Optional[Debugger] = None
        self._current_line = 0
        #: Trace bus for ``js_fn`` function-frame spans.  Only consulted
        #: when its span layer is on; the default NULL_RECORDER keeps
        #: `_invoke` on the historical fast path.
        self.recorder = recorder
        self._install_builtins()

    # -- public API -------------------------------------------------------------

    def attach_debugger(self, debugger: Optional[Debugger]) -> None:
        """Attach (or with ``None`` detach) a debugger."""
        self._debugger = debugger

    @property
    def debugger(self) -> Optional[Debugger]:
        return self._debugger

    def run(self, source: str) -> Any:
        """Parse and execute ``source``; returns the last statement's value."""
        program = parse_program(source)
        return self.execute_program(program)

    def eval_expression(self, source: str) -> Any:
        """Parse and evaluate a single expression."""
        return self._eval(parse_expression(source), self.global_env)

    def execute_program(self, program: ast.Program) -> Any:
        """Execute an already-parsed program in the global scope."""
        self._hoist(program.body, self.global_env)
        result: Any = UNDEFINED
        try:
            for statement in program.body:
                result = self._exec(statement, self.global_env)
        except _Return:
            raise JsSyntaxError("return statement outside function") from None
        except _Break:
            raise JsSyntaxError("break statement outside loop") from None
        except _Continue:
            raise JsSyntaxError("continue statement outside loop") from None
        return result

    def call_function(self, function: Any, args: list[Any], this: Any = UNDEFINED) -> Any:
        """Invoke a JS or native function from Python."""
        return self._invoke(function, args, this, line=self._current_line)

    def define_global(self, name: str, value: Any) -> None:
        """Bind ``name`` in the global scope (host objects, builtins)."""
        self.global_env.declare(name, value)

    # -- builtins ---------------------------------------------------------------

    def _install_builtins(self) -> None:
        env = self.global_env
        env.declare("undefined", UNDEFINED)
        env.declare("NaN", float("nan"))
        env.declare("Infinity", float("inf"))
        env.declare("parseInt", NativeFunction("parseInt", _parse_int))
        env.declare("parseFloat", NativeFunction("parseFloat", _parse_float))
        env.declare("isNaN", NativeFunction("isNaN", _is_nan))
        env.declare("String", NativeFunction("String", _to_string_builtin))
        env.declare("Number", NativeFunction("Number", _to_number_builtin))
        env.declare("encodeURIComponent", NativeFunction("encodeURIComponent", _encode_uri))
        math_object = JSObject(
            {
                "floor": NativeFunction("floor", _math1(math.floor)),
                "ceil": NativeFunction("ceil", _math1(math.ceil)),
                "round": NativeFunction("round", _math1(lambda x: math.floor(x + 0.5))),
                "abs": NativeFunction("abs", _math1(abs)),
                "max": NativeFunction("max", _math_var(max)),
                "min": NativeFunction("min", _math_var(min)),
                "sqrt": NativeFunction("sqrt", _math1(math.sqrt)),
                "pow": NativeFunction("pow", _math2(math.pow)),
                "PI": math.pi,
            }
        )
        env.declare("Math", math_object)
        json_object = JSObject(
            {
                "parse": NativeFunction("parse", _json_parse),
                "stringify": NativeFunction("stringify", _json_stringify),
            }
        )
        env.declare("JSON", json_object)

    # -- statement execution ------------------------------------------------------

    def _tick(self, node: ast.Node) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise JsStepLimitError(
                f"script exceeded {self.max_steps} interpreter steps (infinite loop?)"
            )
        if node.line and node.line != self._current_line:
            self._current_line = node.line
            if self._debugger is not None:
                self._debugger.on_line(node.line)

    @staticmethod
    def _hoist(body: list[ast.Statement], env: Environment) -> None:
        """Pre-declare function declarations so forward calls work."""
        for statement in body:
            if isinstance(statement, ast.FunctionDeclaration):
                env.declare(
                    statement.name,
                    JSFunction(statement.name, statement.params, statement.body, env),
                )

    def _exec(self, node: ast.Statement, env: Environment) -> Any:
        self._tick(node)
        method = getattr(self, f"_exec_{type(node).__name__}", None)
        if method is None:
            raise JsRuntimeError(f"cannot execute {type(node).__name__}")
        return method(node, env)

    def _exec_Program(self, node: ast.Program, env: Environment) -> Any:
        self._hoist(node.body, env)
        result: Any = UNDEFINED
        for statement in node.body:
            result = self._exec(statement, env)
        return result

    def _exec_Block(self, node: ast.Block, env: Environment) -> Any:
        self._hoist(node.body, env)
        result: Any = UNDEFINED
        for statement in node.body:
            result = self._exec(statement, env)
        return result

    def _exec_VarDeclaration(self, node: ast.VarDeclaration, env: Environment) -> Any:
        for name, initializer in node.declarations:
            value = self._eval(initializer, env) if initializer is not None else UNDEFINED
            env.declare(name, value)
        return UNDEFINED

    def _exec_FunctionDeclaration(self, node: ast.FunctionDeclaration, env: Environment) -> Any:
        env.declare(node.name, JSFunction(node.name, node.params, node.body, env))
        return UNDEFINED

    def _exec_ExpressionStatement(self, node: ast.ExpressionStatement, env: Environment) -> Any:
        return self._eval(node.expression, env)

    def _exec_IfStatement(self, node: ast.IfStatement, env: Environment) -> Any:
        if is_truthy(self._eval(node.test, env)):
            return self._exec(node.consequent, env)
        if node.alternate is not None:
            return self._exec(node.alternate, env)
        return UNDEFINED

    def _exec_WhileStatement(self, node: ast.WhileStatement, env: Environment) -> Any:
        while is_truthy(self._eval(node.test, env)):
            self._tick(node)
            try:
                self._exec(node.body, env)
            except _Break:
                break
            except _Continue:
                continue
        return UNDEFINED

    def _exec_DoWhileStatement(self, node: ast.DoWhileStatement, env: Environment) -> Any:
        while True:
            self._tick(node)
            try:
                self._exec(node.body, env)
            except _Break:
                break
            except _Continue:
                pass
            if not is_truthy(self._eval(node.test, env)):
                break
        return UNDEFINED

    def _exec_SwitchStatement(self, node: ast.SwitchStatement, env: Environment) -> Any:
        discriminant = self._eval(node.discriminant, env)
        matched = False
        default_index: Optional[int] = None
        try:
            for index, (test, body) in enumerate(node.cases):
                if not matched:
                    if test is None:
                        default_index = index
                        continue
                    if not _strict_equals(discriminant, self._eval(test, env)):
                        continue
                    matched = True
                for statement in body:
                    self._exec(statement, env)
            if not matched and default_index is not None:
                # Fall through from the default clause onward.
                for _, body in node.cases[default_index:]:
                    for statement in body:
                        self._exec(statement, env)
        except _Break:
            pass
        return UNDEFINED

    def _exec_ThrowStatement(self, node: ast.ThrowStatement, env: Environment) -> Any:
        raise JsThrownValue(self._eval(node.argument, env))

    def _exec_TryStatement(self, node: ast.TryStatement, env: Environment) -> Any:
        try:
            self._exec(node.block, env)
        except JsThrownValue as thrown:
            if node.catch_block is not None:
                catch_env = Environment(env)
                catch_env.declare(node.catch_param or "exception", thrown.value)
                self._exec(node.catch_block, catch_env)
            else:
                raise
        except JsRuntimeError as error:
            # Runtime errors are catchable like browser engines do —
            # except the step-limit guard, which must kill the script.
            if isinstance(error, JsStepLimitError):
                raise
            if node.catch_block is not None:
                catch_env = Environment(env)
                catch_env.declare(node.catch_param or "exception", str(error))
                self._exec(node.catch_block, catch_env)
            else:
                raise
        finally:
            if node.finally_block is not None:
                self._exec(node.finally_block, env)
        return UNDEFINED

    def _exec_ForStatement(self, node: ast.ForStatement, env: Environment) -> Any:
        if node.init is not None:
            self._exec(node.init, env)
        while node.test is None or is_truthy(self._eval(node.test, env)):
            self._tick(node)
            try:
                self._exec(node.body, env)
            except _Break:
                break
            except _Continue:
                pass
            if node.update is not None:
                self._eval(node.update, env)
        return UNDEFINED

    def _exec_ForInStatement(self, node: ast.ForInStatement, env: Environment) -> Any:
        obj = self._eval(node.obj, env)
        if isinstance(obj, JSObject):
            keys = obj.keys()
        elif isinstance(obj, JSArray):
            keys = [str(index) for index in range(obj.length)]
        elif isinstance(obj, HostObject):
            keys = obj.js_keys()
        elif obj is UNDEFINED or obj is None:
            keys = []
        else:
            raise JsTypeError(f"cannot enumerate {type_of(obj)}")
        if node.declare:
            env.declare(node.variable)
        for key in keys:
            self._tick(node)
            env.assign(node.variable, key)
            try:
                self._exec(node.body, env)
            except _Break:
                break
            except _Continue:
                continue
        return UNDEFINED

    def _exec_ReturnStatement(self, node: ast.ReturnStatement, env: Environment) -> Any:
        value = self._eval(node.argument, env) if node.argument is not None else UNDEFINED
        raise _Return(value)

    def _exec_BreakStatement(self, node: ast.BreakStatement, env: Environment) -> Any:
        raise _Break()

    def _exec_ContinueStatement(self, node: ast.ContinueStatement, env: Environment) -> Any:
        raise _Continue()

    def _exec_EmptyStatement(self, node: ast.EmptyStatement, env: Environment) -> Any:
        return UNDEFINED

    # -- expression evaluation ------------------------------------------------------

    def _eval(self, node: ast.Expression, env: Environment) -> Any:
        self._tick(node)
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            raise JsRuntimeError(f"cannot evaluate {type(node).__name__}")
        return method(node, env)

    def _eval_NumberLiteral(self, node: ast.NumberLiteral, env: Environment) -> Any:
        return node.value

    def _eval_StringLiteral(self, node: ast.StringLiteral, env: Environment) -> Any:
        return node.value

    def _eval_BooleanLiteral(self, node: ast.BooleanLiteral, env: Environment) -> Any:
        return node.value

    def _eval_NullLiteral(self, node: ast.NullLiteral, env: Environment) -> Any:
        return None

    def _eval_UndefinedLiteral(self, node: ast.UndefinedLiteral, env: Environment) -> Any:
        return UNDEFINED

    def _eval_Identifier(self, node: ast.Identifier, env: Environment) -> Any:
        return env.get(node.name)

    def _eval_ThisExpression(self, node: ast.ThisExpression, env: Environment) -> Any:
        if env.is_declared("this"):
            return env.get("this")
        return UNDEFINED

    def _eval_ArrayLiteral(self, node: ast.ArrayLiteral, env: Environment) -> Any:
        return JSArray([self._eval(element, env) for element in node.elements])

    def _eval_ObjectLiteral(self, node: ast.ObjectLiteral, env: Environment) -> Any:
        return JSObject({key: self._eval(value, env) for key, value in node.properties})

    def _eval_FunctionExpression(self, node: ast.FunctionExpression, env: Environment) -> Any:
        return JSFunction(node.name, node.params, node.body, env)

    def _eval_UnaryOp(self, node: ast.UnaryOp, env: Environment) -> Any:
        if node.operator == "typeof":
            # typeof tolerates unresolvable identifiers.
            if isinstance(node.operand, ast.Identifier) and not env.is_declared(
                node.operand.name
            ):
                return "undefined"
            return type_of(self._eval(node.operand, env))
        if node.operator == "delete":
            return self._eval_delete(node.operand, env)
        value = self._eval(node.operand, env)
        if node.operator == "!":
            return not is_truthy(value)
        if node.operator == "-":
            return -to_number(value)
        if node.operator == "+":
            return to_number(value)
        raise JsRuntimeError(f"unknown unary operator {node.operator}")

    def _eval_delete(self, target: ast.Expression, env: Environment) -> bool:
        if isinstance(target, ast.Member):
            obj = self._eval(target.obj, env)
            if isinstance(obj, JSObject):
                return obj.delete(target.property)
            raise JsTypeError("delete is only supported on plain objects")
        if isinstance(target, ast.Index):
            obj = self._eval(target.obj, env)
            key = self._eval(target.index, env)
            if isinstance(obj, JSObject):
                return obj.delete(to_string(key))
            raise JsTypeError("delete is only supported on plain objects")
        return True

    def _eval_UpdateOp(self, node: ast.UpdateOp, env: Environment) -> Any:
        old = to_number(self._read_target(node.target, env))
        new = old + 1 if node.operator == "++" else old - 1
        self._write_target(node.target, new, env)
        return new if node.prefix else old

    def _eval_BinaryOp(self, node: ast.BinaryOp, env: Environment) -> Any:
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        return _binary(node.operator, left, right)

    def _eval_LogicalOp(self, node: ast.LogicalOp, env: Environment) -> Any:
        left = self._eval(node.left, env)
        if node.operator == "&&":
            return self._eval(node.right, env) if is_truthy(left) else left
        return left if is_truthy(left) else self._eval(node.right, env)

    def _eval_Conditional(self, node: ast.Conditional, env: Environment) -> Any:
        if is_truthy(self._eval(node.test, env)):
            return self._eval(node.consequent, env)
        return self._eval(node.alternate, env)

    def _eval_Assignment(self, node: ast.Assignment, env: Environment) -> Any:
        if node.operator == "=":
            value = self._eval(node.value, env)
        else:
            current = self._read_target(node.target, env)
            operand = self._eval(node.value, env)
            value = _binary(node.operator[0], current, operand)
        self._write_target(node.target, value, env)
        return value

    def _read_target(self, target: ast.Expression, env: Environment) -> Any:
        if isinstance(target, ast.Identifier):
            return env.get(target.name)
        if isinstance(target, ast.Member):
            return self._get_member(self._eval(target.obj, env), target.property)
        if isinstance(target, ast.Index):
            obj = self._eval(target.obj, env)
            key = self._eval(target.index, env)
            return self._get_indexed(obj, key)
        raise JsTypeError("invalid assignment target")

    def _write_target(self, target: ast.Expression, value: Any, env: Environment) -> None:
        if isinstance(target, ast.Identifier):
            env.assign(target.name, value)
            return
        if isinstance(target, ast.Member):
            self._set_member(self._eval(target.obj, env), target.property, value)
            return
        if isinstance(target, ast.Index):
            obj = self._eval(target.obj, env)
            key = self._eval(target.index, env)
            self._set_indexed(obj, key, value)
            return
        raise JsTypeError("invalid assignment target")

    def _eval_Member(self, node: ast.Member, env: Environment) -> Any:
        return self._get_member(self._eval(node.obj, env), node.property)

    def _eval_Index(self, node: ast.Index, env: Environment) -> Any:
        obj = self._eval(node.obj, env)
        key = self._eval(node.index, env)
        return self._get_indexed(obj, key)

    def _eval_Call(self, node: ast.Call, env: Environment) -> Any:
        this: Any = UNDEFINED
        if isinstance(node.callee, ast.Member):
            this = self._eval(node.callee.obj, env)
            function = self._get_member(this, node.callee.property)
        elif isinstance(node.callee, ast.Index):
            this = self._eval(node.callee.obj, env)
            key = self._eval(node.callee.index, env)
            function = self._get_indexed(this, key)
        else:
            function = self._eval(node.callee, env)
        args = [self._eval(argument, env) for argument in node.arguments]
        return self._invoke(function, args, this, node.line)

    def _eval_New(self, node: ast.New, env: Environment) -> Any:
        callee = self._eval(node.callee, env)
        args = [self._eval(argument, env) for argument in node.arguments]
        if isinstance(callee, HostConstructor):
            return callee.construct(self, args)
        if isinstance(callee, JSFunction):
            instance = JSObject()
            self._invoke(callee, args, instance, node.line)
            return instance
        raise JsTypeError(f"{to_string(callee)} is not a constructor")

    # -- invocation -------------------------------------------------------------------

    def _invoke(self, function: Any, args: list[Any], this: Any, line: int) -> Any:
        if not is_callable(function):
            raise JsTypeError(f"{to_string(function)} is not a function")
        if isinstance(function, HostConstructor):
            return function.construct(self, args)
        name = getattr(function, "name", "<anonymous>") or "<anonymous>"
        native = isinstance(function, NativeFunction)
        frame = StackFrame(
            function_name=name,
            arguments=list(args),
            line=line,
            native=native,
        )
        if self._debugger is not None:
            intercept = self._debugger.on_enter(frame)
            if intercept is not None:
                return intercept.value
        if not native and self.recorder.spans:
            # Function-frame spans feed the hot-node attribution
            # flamegraphs; native host calls are envelope noise and
            # stay span-free.
            with self.recorder.span("js_fn", name=name, line=line):
                return self._run_frame(function, args, this, frame, native)
        return self._run_frame(function, args, this, frame, native)

    def _run_frame(
        self,
        function: Any,
        args: list[Any],
        this: Any,
        frame: StackFrame,
        native: bool,
    ) -> Any:
        if len(self.call_stack) >= self.MAX_CALL_DEPTH:
            raise JsRuntimeError("maximum call stack size exceeded")
        self.call_stack.push(frame)
        try:
            if native:
                result = function.fn(self, this, args)
            else:
                result = self._call_js_function(function, args, this)
        except JsRuntimeError as error:
            if self._debugger is not None:
                self._debugger.on_exception(frame, error)
            raise
        except (_Break, _Continue):
            raise JsRuntimeError("break/continue outside loop") from None
        finally:
            self.call_stack.pop()
        if self._debugger is not None:
            self._debugger.on_exit(frame, result)
        return result

    def _call_js_function(self, function: JSFunction, args: list[Any], this: Any) -> Any:
        env = Environment(function.closure)
        env.declare("this", this)
        env.declare("arguments", JSArray(list(args)))
        for index, param in enumerate(function.params):
            env.declare(param, args[index] if index < len(args) else UNDEFINED)
        self._hoist(function.body.body, env)
        try:
            for statement in function.body.body:
                self._exec(statement, env)
        except _Return as ret:
            return ret.value
        return UNDEFINED

    # -- member protocol -----------------------------------------------------------------

    def _get_member(self, obj: Any, name: str) -> Any:
        if obj is UNDEFINED or obj is None:
            raise JsTypeError(f"cannot read property {name!r} of {to_string(obj)}")
        if isinstance(obj, HostObject):
            return obj.js_get(name)
        if isinstance(obj, JSObject):
            return obj.get(name)
        if isinstance(obj, JSArray):
            return _array_member(obj, name)
        if isinstance(obj, str):
            return _string_member(obj, name)
        if isinstance(obj, (int, float)):
            return _number_member(obj, name)
        raise JsTypeError(f"cannot read property {name!r} of {type_of(obj)}")

    def _set_member(self, obj: Any, name: str, value: Any) -> None:
        if isinstance(obj, HostObject):
            obj.js_set(name, value)
            return
        if isinstance(obj, JSObject):
            obj.set(name, value)
            return
        if isinstance(obj, JSArray) and name == "length":
            _array_set_length(obj, value)
            return
        raise JsTypeError(f"cannot set property {name!r} on {type_of(obj)}")

    def _get_indexed(self, obj: Any, key: Any) -> Any:
        if isinstance(obj, JSArray) and isinstance(key, (int, float)) and not isinstance(key, bool):
            return obj.get_index(int(key))
        if isinstance(obj, str) and isinstance(key, (int, float)) and not isinstance(key, bool):
            index = int(key)
            return obj[index] if 0 <= index < len(obj) else UNDEFINED
        return self._get_member(obj, to_string(key))

    def _set_indexed(self, obj: Any, key: Any, value: Any) -> None:
        if isinstance(obj, JSArray) and isinstance(key, (int, float)) and not isinstance(key, bool):
            obj.set_index(int(key), value)
            return
        self._set_member(obj, to_string(key), value)


# -- operators -------------------------------------------------------------------


def _binary(operator: str, left: Any, right: Any) -> Any:
    if operator == "+":
        if isinstance(left, str) or isinstance(right, str):
            return to_string(left) + to_string(right)
        return to_number(left) + to_number(right)
    if operator == "-":
        return to_number(left) - to_number(right)
    if operator == "*":
        return to_number(left) * to_number(right)
    if operator == "/":
        divisor = to_number(right)
        dividend = to_number(left)
        if divisor == 0:
            if dividend != dividend or dividend == 0:
                return float("nan")
            return float("inf") if dividend > 0 else float("-inf")
        return dividend / divisor
    if operator == "%":
        divisor = to_number(right)
        if divisor == 0:
            return float("nan")
        return math.fmod(to_number(left), divisor)
    if operator in ("==", "!="):
        equal = _loose_equals(left, right)
        return equal if operator == "==" else not equal
    if operator in ("===", "!=="):
        equal = _strict_equals(left, right)
        return equal if operator == "===" else not equal
    if operator in ("<", ">", "<=", ">="):
        return _compare(operator, left, right)
    if operator == "in":
        return _in_operator(left, right)
    raise JsRuntimeError(f"unknown binary operator {operator}")


def _strict_equals(left: Any, right: Any) -> bool:
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool) and left == right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left) == float(right)
    if isinstance(left, str) and isinstance(right, str):
        return left == right
    return left is right


def _loose_equals(left: Any, right: Any) -> bool:
    null_like = (None, UNDEFINED)
    if left in null_like and right in null_like:
        return True
    if left in null_like or right in null_like:
        return False
    if isinstance(left, str) and isinstance(right, str):
        return left == right
    if isinstance(left, (bool, int, float)) and isinstance(right, (bool, int, float)):
        return to_number(left) == to_number(right)
    if isinstance(left, str) and isinstance(right, (int, float)):
        return to_number(left) == to_number(right)
    if isinstance(left, (int, float)) and isinstance(right, str):
        return to_number(left) == to_number(right)
    return left is right


def _compare(operator: str, left: Any, right: Any) -> bool:
    if isinstance(left, str) and isinstance(right, str):
        pairs = {"<": left < right, ">": left > right, "<=": left <= right, ">=": left >= right}
        return pairs[operator]
    lnum, rnum = to_number(left), to_number(right)
    if lnum != lnum or rnum != rnum:
        return False
    pairs = {"<": lnum < rnum, ">": lnum > rnum, "<=": lnum <= rnum, ">=": lnum >= rnum}
    return pairs[operator]


def _in_operator(key: Any, obj: Any) -> bool:
    name = to_string(key)
    if isinstance(obj, JSObject):
        return name in obj.properties
    if isinstance(obj, JSArray):
        try:
            index = int(name)
        except ValueError:
            return False
        return 0 <= index < obj.length
    if isinstance(obj, HostObject):
        return name in obj.js_keys()
    raise JsTypeError("'in' requires an object")


# -- built-in members ---------------------------------------------------------------


def _array_member(array: JSArray, name: str) -> Any:
    if name == "length":
        return float(array.length)
    methods = {
        "push": lambda interp, this, args: _array_push(array, args),
        "pop": lambda interp, this, args: _array_pop(array),
        "shift": lambda interp, this, args: _array_shift(array),
        "unshift": lambda interp, this, args: _array_unshift(array, args),
        "join": lambda interp, this, args: _array_join(array, args),
        "indexOf": lambda interp, this, args: _array_index_of(array, args),
        "slice": lambda interp, this, args: _array_slice(array, args),
        "concat": lambda interp, this, args: _array_concat(array, args),
        "reverse": lambda interp, this, args: _array_reverse(array),
        "sort": lambda interp, this, args: _array_sort(interp, array, args),
        "map": lambda interp, this, args: _array_map(interp, array, args),
        "filter": lambda interp, this, args: _array_filter(interp, array, args),
        "forEach": lambda interp, this, args: _array_for_each(interp, array, args),
    }
    if name in methods:
        return NativeFunction(name, methods[name])
    return UNDEFINED


def _array_push(array: JSArray, args: list[Any]) -> float:
    array.elements.extend(args)
    return float(array.length)


def _array_pop(array: JSArray) -> Any:
    return array.elements.pop() if array.elements else UNDEFINED


def _array_join(array: JSArray, args: list[Any]) -> str:
    separator = to_string(args[0]) if args else ","
    return separator.join(to_string(element) for element in array.elements)


def _array_index_of(array: JSArray, args: list[Any]) -> float:
    needle = args[0] if args else UNDEFINED
    for index, element in enumerate(array.elements):
        if _strict_equals(element, needle):
            return float(index)
    return -1.0


def _array_slice(array: JSArray, args: list[Any]) -> JSArray:
    start = int(to_number(args[0])) if args else 0
    end = int(to_number(args[1])) if len(args) > 1 else array.length
    return JSArray(array.elements[start:end])


def _array_concat(array: JSArray, args: list[Any]) -> JSArray:
    merged = list(array.elements)
    for arg in args:
        if isinstance(arg, JSArray):
            merged.extend(arg.elements)
        else:
            merged.append(arg)
    return JSArray(merged)


def _array_shift(array: JSArray) -> Any:
    return array.elements.pop(0) if array.elements else UNDEFINED


def _array_unshift(array: JSArray, args: list[Any]) -> float:
    array.elements[0:0] = args
    return float(array.length)


def _array_reverse(array: JSArray) -> JSArray:
    array.elements.reverse()
    return array


def _array_sort(interp: "Interpreter", array: JSArray, args: list[Any]) -> JSArray:
    if args and is_callable(args[0]):
        comparator = args[0]
        import functools

        def compare(a: Any, b: Any) -> int:
            result = to_number(interp.call_function(comparator, [a, b]))
            if result < 0:
                return -1
            if result > 0:
                return 1
            return 0

        array.elements.sort(key=functools.cmp_to_key(compare))
    else:
        array.elements.sort(key=to_string)
    return array


def _array_map(interp: "Interpreter", array: JSArray, args: list[Any]) -> JSArray:
    if not args or not is_callable(args[0]):
        raise JsTypeError("Array.map expects a function")
    fn = args[0]
    return JSArray(
        [
            interp.call_function(fn, [element, float(index)])
            for index, element in enumerate(array.elements)
        ]
    )


def _array_filter(interp: "Interpreter", array: JSArray, args: list[Any]) -> JSArray:
    if not args or not is_callable(args[0]):
        raise JsTypeError("Array.filter expects a function")
    fn = args[0]
    return JSArray(
        [
            element
            for index, element in enumerate(array.elements)
            if is_truthy(interp.call_function(fn, [element, float(index)]))
        ]
    )


def _array_for_each(interp: "Interpreter", array: JSArray, args: list[Any]) -> Any:
    if not args or not is_callable(args[0]):
        raise JsTypeError("Array.forEach expects a function")
    fn = args[0]
    for index, element in enumerate(array.elements):
        interp.call_function(fn, [element, float(index)])
    return UNDEFINED


def _array_set_length(array: JSArray, value: Any) -> None:
    new_length = int(to_number(value))
    if new_length < 0:
        raise JsTypeError("invalid array length")
    if new_length < array.length:
        del array.elements[new_length:]
    else:
        array.elements.extend([UNDEFINED] * (new_length - array.length))


def _string_member(text: str, name: str) -> Any:
    if name == "length":
        return float(len(text))
    methods = {
        "charAt": lambda interp, this, args: (
            text[int(to_number(args[0]))] if args and 0 <= int(to_number(args[0])) < len(text) else ""
        ),
        "indexOf": lambda interp, this, args: float(text.find(to_string(args[0]) if args else "undefined")),
        "lastIndexOf": lambda interp, this, args: float(text.rfind(to_string(args[0]) if args else "undefined")),
        "substring": lambda interp, this, args: _substring(text, args),
        "slice": lambda interp, this, args: _string_slice(text, args),
        "split": lambda interp, this, args: _string_split(text, args),
        "toLowerCase": lambda interp, this, args: text.lower(),
        "toUpperCase": lambda interp, this, args: text.upper(),
        "replace": lambda interp, this, args: text.replace(to_string(args[0]), to_string(args[1]), 1),
        "trim": lambda interp, this, args: text.strip(),
        "concat": lambda interp, this, args: text + "".join(to_string(a) for a in args),
        "charCodeAt": lambda interp, this, args: _char_code_at(text, args),
        "startsWith": lambda interp, this, args: text.startswith(to_string(args[0]) if args else "undefined"),
        "endsWith": lambda interp, this, args: text.endswith(to_string(args[0]) if args else "undefined"),
        "includes": lambda interp, this, args: (to_string(args[0]) if args else "undefined") in text,
        "repeat": lambda interp, this, args: text * max(0, int(to_number(args[0])) if args else 0),
    }
    if name in methods:
        return NativeFunction(name, methods[name])
    return UNDEFINED


def _substring(text: str, args: list[Any]) -> str:
    start = max(0, int(to_number(args[0]))) if args else 0
    end = max(0, int(to_number(args[1]))) if len(args) > 1 else len(text)
    if start > end:
        start, end = end, start
    return text[start:end]


def _string_slice(text: str, args: list[Any]) -> str:
    start = int(to_number(args[0])) if args else 0
    end = int(to_number(args[1])) if len(args) > 1 else len(text)
    return text[slice(start, end)]


def _string_split(text: str, args: list[Any]) -> JSArray:
    if not args or args[0] is UNDEFINED:
        return JSArray([text])
    separator = to_string(args[0])
    if separator == "":
        return JSArray(list(text))
    return JSArray(text.split(separator))


def _char_code_at(text: str, args: list[Any]) -> float:
    index = int(to_number(args[0])) if args else 0
    if 0 <= index < len(text):
        return float(ord(text[index]))
    return float("nan")


def _number_member(value: Any, name: str) -> Any:
    methods = {
        "toFixed": lambda interp, this, args: (
            f"{float(value):.{int(to_number(args[0])) if args else 0}f}"
        ),
        "toString": lambda interp, this, args: to_string(float(value)),
    }
    if name in methods:
        return NativeFunction(name, methods[name])
    return UNDEFINED


# -- global builtins --------------------------------------------------------------


def _parse_int(interp: Interpreter, this: Any, args: list[Any]) -> float:
    text = to_string(args[0]).strip() if args else ""
    radix = int(to_number(args[1])) if len(args) > 1 and args[1] is not UNDEFINED else 10
    sign = 1
    if text[:1] in "+-":
        if text[0] == "-":
            sign = -1
        text = text[1:]
    if radix == 16 and text.lower().startswith("0x"):
        text = text[2:]
    digits = ""
    for char in text:
        try:
            if int(char, radix) >= 0:
                digits += char
        except ValueError:
            break
    if not digits:
        return float("nan")
    return float(sign * int(digits, radix))


def _parse_float(interp: Interpreter, this: Any, args: list[Any]) -> float:
    text = to_string(args[0]).strip() if args else ""
    import re

    match = re.match(r"[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?", text)
    return float(match.group(0)) if match else float("nan")


def _is_nan(interp: Interpreter, this: Any, args: list[Any]) -> bool:
    number = to_number(args[0]) if args else float("nan")
    return number != number


def _to_string_builtin(interp: Interpreter, this: Any, args: list[Any]) -> str:
    return to_string(args[0]) if args else ""


def _to_number_builtin(interp: Interpreter, this: Any, args: list[Any]) -> float:
    return to_number(args[0]) if args else 0.0


def _json_parse(interp: Interpreter, this: Any, args: list[Any]) -> Any:
    import json

    text = to_string(args[0]) if args else "undefined"
    try:
        return _python_to_js(json.loads(text))
    except ValueError as error:
        raise JsRuntimeError(f"JSON.parse: {error}") from None


def _json_stringify(interp: Interpreter, this: Any, args: list[Any]) -> Any:
    import json

    if not args:
        return UNDEFINED
    try:
        return json.dumps(_js_to_python(args[0]))
    except (TypeError, ValueError):
        return UNDEFINED


def _python_to_js(value: Any) -> Any:
    if isinstance(value, dict):
        return JSObject({key: _python_to_js(item) for key, item in value.items()})
    if isinstance(value, list):
        return JSArray([_python_to_js(item) for item in value])
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    return value


def _js_to_python(value: Any) -> Any:
    if value is UNDEFINED:
        return None
    if isinstance(value, JSObject):
        return {key: _js_to_python(item) for key, item in value.properties.items()}
    if isinstance(value, JSArray):
        return [_js_to_python(item) for item in value.elements]
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def _encode_uri(interp: Interpreter, this: Any, args: list[Any]) -> str:
    from urllib.parse import quote

    return quote(to_string(args[0]) if args else "undefined", safe="")


def _math1(fn: Any) -> Any:
    def wrapper(interp: Interpreter, this: Any, args: list[Any]) -> float:
        return float(fn(to_number(args[0]) if args else float("nan")))

    return wrapper


def _math2(fn: Any) -> Any:
    def wrapper(interp: Interpreter, this: Any, args: list[Any]) -> float:
        a = to_number(args[0]) if args else float("nan")
        b = to_number(args[1]) if len(args) > 1 else float("nan")
        return float(fn(a, b))

    return wrapper


def _math_var(fn: Any) -> Any:
    def wrapper(interp: Interpreter, this: Any, args: list[Any]) -> float:
        if not args:
            return float("-inf") if fn is max else float("inf")
        return float(fn(to_number(argument) for argument in args))

    return wrapper
