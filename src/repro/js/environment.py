"""Lexical environments (scope chains) for the interpreter."""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import JsReferenceError
from repro.js.values import UNDEFINED


class Environment:
    """One scope: a binding map plus a link to the enclosing scope."""

    def __init__(self, parent: Optional["Environment"] = None) -> None:
        self.parent = parent
        self.bindings: dict[str, Any] = {}

    def declare(self, name: str, value: Any = UNDEFINED) -> None:
        """Create (or overwrite) a binding in *this* scope."""
        self.bindings[name] = value

    def is_declared(self, name: str) -> bool:
        """Whether ``name`` resolves anywhere on the scope chain."""
        scope: Optional[Environment] = self
        while scope is not None:
            if name in scope.bindings:
                return True
            scope = scope.parent
        return False

    def get(self, name: str) -> Any:
        """Read ``name`` from the nearest scope that binds it."""
        scope: Optional[Environment] = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        raise JsReferenceError(f"{name} is not defined")

    def assign(self, name: str, value: Any) -> None:
        """Write ``name`` in the nearest scope that binds it.

        Like sloppy-mode JavaScript, assigning to an undeclared name
        creates a global binding.
        """
        scope: Optional[Environment] = self
        while scope is not None:
            if name in scope.bindings:
                scope.bindings[name] = value
                return
            if scope.parent is None:
                scope.bindings[name] = value  # implicit global
                return
            scope = scope.parent

    def global_scope(self) -> "Environment":
        """The outermost scope of this chain."""
        scope = self
        while scope.parent is not None:
            scope = scope.parent
        return scope
