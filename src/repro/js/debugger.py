"""The debugger interface of the interpreter.

This mirrors Rhino's ``Debugger``/``DebugFrame`` pair that section 4.4.2
of the thesis relies on: an attached debugger is informed whenever
script execution enters or leaves a function, moves to a new source line
or raises, and — crucially for hot-node caching — the ``on_enter`` hook
may *intercept* the call and supply the result without executing the
function body.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.js.values import to_string


@dataclass
class StackFrame:
    """One entry of the interpreter's call stack."""

    function_name: str
    arguments: list[Any] = field(default_factory=list)
    line: int = 0
    #: True when the frame belongs to a native (Python-backed) function.
    #: Hot-node StackInfo skips native frames such as ``open`` to find the
    #: topmost *script* function (section 4.4.1).
    native: bool = False

    def render_arguments(self) -> str:
        """Actual parameter values in the canonical hot-node format."""
        return ", ".join(to_string(argument) for argument in self.arguments)

    def signature(self) -> str:
        """``name(arg, arg, ...)`` — the thesis' StackInfo string."""
        return f"{self.function_name}({self.render_arguments()})"


class CallStack:
    """The interpreter's stack of :class:`StackFrame` objects."""

    def __init__(self) -> None:
        self._frames: list[StackFrame] = []

    def __len__(self) -> int:
        return len(self._frames)

    def push(self, frame: StackFrame) -> None:
        self._frames.append(frame)

    def pop(self) -> StackFrame:
        return self._frames.pop()

    def top(self) -> Optional[StackFrame]:
        """The currently executing function's frame, or ``None``."""
        return self._frames[-1] if self._frames else None

    def top_script_frame(self) -> Optional[StackFrame]:
        """The topmost non-native frame (the currently executing *script*
        function), or ``None`` when only native frames are on the stack."""
        for frame in reversed(self._frames):
            if not frame.native:
                return frame
        return None

    def frames(self) -> list[StackFrame]:
        """Bottom-to-top snapshot of the stack."""
        return list(self._frames)

    @property
    def depth(self) -> int:
        return len(self._frames)

    def __repr__(self) -> str:
        chain = " > ".join(frame.function_name for frame in self._frames)
        return f"CallStack({chain})"


@dataclass
class Intercept:
    """Returned by ``Debugger.on_enter`` to skip a call and supply ``value``."""

    value: Any


class Debugger:
    """Base debugger; attach to an interpreter via ``interpreter.attach_debugger``.

    Subclass and override the hooks you need.  All hooks default to
    no-ops, and ``on_enter`` returning ``None`` means "execute normally".
    """

    def on_enter(self, frame: StackFrame) -> Optional[Intercept]:
        """Called before a function body runs.  Return an
        :class:`Intercept` to skip execution and use its value as the
        call result."""
        return None

    def on_exit(self, frame: StackFrame, result: Any) -> None:
        """Called after a function body returned ``result``."""

    def on_line(self, line: int) -> None:
        """Called when execution reaches a new source line."""

    def on_exception(self, frame: Optional[StackFrame], error: Exception) -> None:
        """Called when a runtime error propagates out of a function."""
