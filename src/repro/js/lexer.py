"""Tokenizer for the JavaScript subset.

Supports decimal and hexadecimal numbers, single- and double-quoted
strings with the common escapes, identifiers, keywords, punctuators and
both comment styles.  Positions are tracked for error messages and for
the debugger's line notifications.
"""

from __future__ import annotations

from repro.errors import JsSyntaxError
from repro.js.tokens import KEYWORDS, PUNCTUATORS, Token, TokenType

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    "v": "\v",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "/": "/",
}


class Lexer:
    """Converts JavaScript source text into a list of tokens."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> list[Token]:
        """Tokenize the whole input, ending with a single EOF token."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.type is TokenType.EOF:
                return tokens

    # -- internals -----------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise JsSyntaxError("unterminated block comment", self.line, self.column)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, column = self.line, self.column
        if self.pos >= len(self.source):
            return Token(TokenType.EOF, "", line, column)
        char = self._peek()
        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            return self._read_number(line, column)
        if char in "\"'":
            return self._read_string(line, column)
        if char.isalpha() or char in "_$":
            return self._read_identifier(line, column)
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenType.PUNCTUATOR, punct, line, column)
        raise JsSyntaxError(f"unexpected character {char!r}", line, column)

    def _read_number(self, line: int, column: int) -> Token:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            return Token(TokenType.NUMBER, self.source[start:self.pos], line, column)
        while self._peek().isdigit():
            self._advance()
        if self._peek() == ".":
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E"):
            self._advance()
            if self._peek() in ("+", "-"):
                self._advance()
            if not self._peek().isdigit():
                raise JsSyntaxError("malformed exponent", self.line, self.column)
            while self._peek().isdigit():
                self._advance()
        return Token(TokenType.NUMBER, self.source[start:self.pos], line, column)

    def _read_string(self, line: int, column: int) -> Token:
        quote = self._peek()
        self._advance()
        parts: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise JsSyntaxError("unterminated string literal", line, column)
            char = self._peek()
            if char == quote:
                self._advance()
                return Token(TokenType.STRING, "".join(parts), line, column)
            if char == "\n":
                raise JsSyntaxError("newline in string literal", self.line, self.column)
            if char == "\\":
                self._advance()
                escape = self._peek()
                if escape == "u":
                    self._advance()
                    hex_digits = self.source[self.pos:self.pos + 4]
                    if len(hex_digits) < 4:
                        raise JsSyntaxError("bad unicode escape", self.line, self.column)
                    parts.append(chr(int(hex_digits, 16)))
                    self._advance(4)
                    continue
                if escape == "x":
                    self._advance()
                    hex_digits = self.source[self.pos:self.pos + 2]
                    if len(hex_digits) < 2:
                        raise JsSyntaxError("bad hex escape", self.line, self.column)
                    parts.append(chr(int(hex_digits, 16)))
                    self._advance(2)
                    continue
                parts.append(_ESCAPES.get(escape, escape))
                self._advance()
                continue
            parts.append(char)
            self._advance()

    def _read_identifier(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek() and (self._peek().isalnum() or self._peek() in "_$"):
            self._advance()
        word = self.source[start:self.pos]
        kind = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENTIFIER
        return Token(kind, word, line, column)


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` with a fresh :class:`Lexer`."""
    return Lexer(source).tokenize()
