"""Abstract syntax tree for the JavaScript subset.

Plain dataclasses, one per construct.  Every node carries the source
line so the interpreter can report positions and drive the debugger's
``on_line`` notifications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

Expression = Union[
    "NumberLiteral",
    "StringLiteral",
    "BooleanLiteral",
    "NullLiteral",
    "UndefinedLiteral",
    "Identifier",
    "ThisExpression",
    "ArrayLiteral",
    "ObjectLiteral",
    "FunctionExpression",
    "UnaryOp",
    "UpdateOp",
    "BinaryOp",
    "LogicalOp",
    "Conditional",
    "Assignment",
    "Call",
    "New",
    "Member",
    "Index",
]

Statement = Union[
    "Program",
    "VarDeclaration",
    "FunctionDeclaration",
    "ExpressionStatement",
    "IfStatement",
    "WhileStatement",
    "ForStatement",
    "ForInStatement",
    "ReturnStatement",
    "BreakStatement",
    "ContinueStatement",
    "Block",
    "EmptyStatement",
]


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)


# -- expressions -------------------------------------------------------------


@dataclass
class NumberLiteral(Node):
    value: float


@dataclass
class StringLiteral(Node):
    value: str


@dataclass
class BooleanLiteral(Node):
    value: bool


@dataclass
class NullLiteral(Node):
    pass


@dataclass
class UndefinedLiteral(Node):
    pass


@dataclass
class Identifier(Node):
    name: str


@dataclass
class ThisExpression(Node):
    pass


@dataclass
class ArrayLiteral(Node):
    elements: list[Expression]


@dataclass
class ObjectLiteral(Node):
    #: (key, value) pairs in source order.
    properties: list[tuple[str, Expression]]


@dataclass
class FunctionExpression(Node):
    name: Optional[str]
    params: list[str]
    body: "Block"


@dataclass
class UnaryOp(Node):
    operator: str  # '-', '+', '!', 'typeof', 'delete'
    operand: Expression


@dataclass
class UpdateOp(Node):
    operator: str  # '++' or '--'
    target: Expression
    prefix: bool


@dataclass
class BinaryOp(Node):
    operator: str
    left: Expression
    right: Expression


@dataclass
class LogicalOp(Node):
    operator: str  # '&&' or '||'
    left: Expression
    right: Expression


@dataclass
class Conditional(Node):
    test: Expression
    consequent: Expression
    alternate: Expression


@dataclass
class Assignment(Node):
    operator: str  # '=', '+=', '-=', '*=', '/=', '%='
    target: Expression  # Identifier, Member or Index
    value: Expression


@dataclass
class Call(Node):
    callee: Expression
    arguments: list[Expression]


@dataclass
class New(Node):
    callee: Expression
    arguments: list[Expression]


@dataclass
class Member(Node):
    obj: Expression
    property: str


@dataclass
class Index(Node):
    obj: Expression
    index: Expression


# -- statements ---------------------------------------------------------------


@dataclass
class Program(Node):
    body: list[Statement]


@dataclass
class Block(Node):
    body: list[Statement]


@dataclass
class VarDeclaration(Node):
    #: (name, initializer or None) pairs.
    declarations: list[tuple[str, Optional[Expression]]]


@dataclass
class FunctionDeclaration(Node):
    name: str
    params: list[str]
    body: Block


@dataclass
class ExpressionStatement(Node):
    expression: Expression


@dataclass
class IfStatement(Node):
    test: Expression
    consequent: Statement
    alternate: Optional[Statement]


@dataclass
class WhileStatement(Node):
    test: Expression
    body: Statement


@dataclass
class DoWhileStatement(Node):
    body: Statement
    test: Expression


@dataclass
class SwitchStatement(Node):
    discriminant: Expression
    #: (test expression or None for default, statement list) in order.
    cases: list[tuple[Optional[Expression], list[Statement]]]


@dataclass
class ThrowStatement(Node):
    argument: Expression


@dataclass
class TryStatement(Node):
    block: "Block"
    catch_param: Optional[str]
    catch_block: Optional["Block"]
    finally_block: Optional["Block"]


@dataclass
class ForStatement(Node):
    init: Optional[Statement]
    test: Optional[Expression]
    update: Optional[Expression]
    body: Statement


@dataclass
class ForInStatement(Node):
    variable: str
    declare: bool
    obj: Expression
    body: Statement


@dataclass
class ReturnStatement(Node):
    argument: Optional[Expression]


@dataclass
class BreakStatement(Node):
    pass


@dataclass
class ContinueStatement(Node):
    pass


@dataclass
class EmptyStatement(Node):
    pass
