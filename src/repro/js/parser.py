"""Recursive-descent parser for the JavaScript subset.

Produces :mod:`repro.js.ast` trees.  Operator precedence follows
ECMAScript; semicolons are required after expression statements except
before ``}`` and EOF (a pragmatic subset of automatic semicolon
insertion sufficient for the page scripts this library generates and for
hand-written test programs).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import JsSyntaxError
from repro.js import ast
from repro.js.lexer import tokenize
from repro.js.tokens import Token, TokenType

#: Binary operator precedence (higher binds tighter).
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "===": 3,
    "!==": 3,
    "<": 4,
    ">": 4,
    "<=": 4,
    ">=": 4,
    "in": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}

_ASSIGNMENT_OPS = {"=", "+=", "-=", "*=", "/=", "%="}


class Parser:
    """Parses one source string into a :class:`repro.js.ast.Program`."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers --------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _check(self, type_: TokenType, value: Optional[str] = None) -> bool:
        token = self._peek()
        if token.type is not type_:
            return False
        return value is None or token.value == value

    def _match(self, type_: TokenType, value: Optional[str] = None) -> Optional[Token]:
        if self._check(type_, value):
            return self._advance()
        return None

    def _expect(self, type_: TokenType, value: Optional[str] = None) -> Token:
        token = self._peek()
        if not self._check(type_, value):
            expected = value or type_.name
            raise JsSyntaxError(
                f"expected {expected!r} but found {token.value!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _expect_semicolon(self) -> None:
        if self._match(TokenType.PUNCTUATOR, ";"):
            return
        token = self._peek()
        # Tolerate a missing semicolon at a block end or EOF.
        if token.type is TokenType.EOF or token.value == "}":
            return
        raise JsSyntaxError(
            f"expected ';' but found {token.value!r}", token.line, token.column
        )

    # -- entry points -----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        """Parse the whole input as a top-level program."""
        body: list[ast.Statement] = []
        first = self._peek()
        while not self._check(TokenType.EOF):
            body.append(self._statement())
        return ast.Program(body, line=first.line)

    def parse_expression(self) -> ast.Expression:
        """Parse the whole input as a single expression."""
        expression = self._expression()
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise JsSyntaxError(
                f"unexpected trailing input {token.value!r}", token.line, token.column
            )
        return expression

    # -- statements ---------------------------------------------------------------

    def _statement(self) -> ast.Statement:
        token = self._peek()
        if token.type is TokenType.KEYWORD:
            handler = {
                "var": self._var_statement,
                "function": self._function_declaration,
                "if": self._if_statement,
                "while": self._while_statement,
                "do": self._do_while_statement,
                "switch": self._switch_statement,
                "for": self._for_statement,
                "return": self._return_statement,
                "break": self._break_statement,
                "continue": self._continue_statement,
                "throw": self._throw_statement,
                "try": self._try_statement,
            }.get(token.value)
            if handler is not None:
                return handler()
        if self._check(TokenType.PUNCTUATOR, "{"):
            return self._block()
        if self._match(TokenType.PUNCTUATOR, ";"):
            return ast.EmptyStatement(line=token.line)
        expression = self._expression()
        self._expect_semicolon()
        return ast.ExpressionStatement(expression, line=token.line)

    def _block(self) -> ast.Block:
        open_brace = self._expect(TokenType.PUNCTUATOR, "{")
        body: list[ast.Statement] = []
        while not self._check(TokenType.PUNCTUATOR, "}"):
            if self._check(TokenType.EOF):
                raise JsSyntaxError("unterminated block", open_brace.line, open_brace.column)
            body.append(self._statement())
        self._expect(TokenType.PUNCTUATOR, "}")
        return ast.Block(body, line=open_brace.line)

    def _var_statement(self) -> ast.VarDeclaration:
        declaration = self._var_declaration()
        self._expect_semicolon()
        return declaration

    def _var_declaration(self) -> ast.VarDeclaration:
        keyword = self._expect(TokenType.KEYWORD, "var")
        declarations: list[tuple[str, Optional[ast.Expression]]] = []
        while True:
            name = self._expect(TokenType.IDENTIFIER).value
            initializer = None
            if self._match(TokenType.PUNCTUATOR, "="):
                initializer = self._assignment_expression()
            declarations.append((name, initializer))
            if not self._match(TokenType.PUNCTUATOR, ","):
                break
        return ast.VarDeclaration(declarations, line=keyword.line)

    def _function_declaration(self) -> ast.FunctionDeclaration:
        keyword = self._expect(TokenType.KEYWORD, "function")
        name = self._expect(TokenType.IDENTIFIER).value
        params = self._parameter_list()
        body = self._block()
        return ast.FunctionDeclaration(name, params, body, line=keyword.line)

    def _parameter_list(self) -> list[str]:
        self._expect(TokenType.PUNCTUATOR, "(")
        params: list[str] = []
        if not self._check(TokenType.PUNCTUATOR, ")"):
            while True:
                params.append(self._expect(TokenType.IDENTIFIER).value)
                if not self._match(TokenType.PUNCTUATOR, ","):
                    break
        self._expect(TokenType.PUNCTUATOR, ")")
        return params

    def _if_statement(self) -> ast.IfStatement:
        keyword = self._expect(TokenType.KEYWORD, "if")
        self._expect(TokenType.PUNCTUATOR, "(")
        test = self._expression()
        self._expect(TokenType.PUNCTUATOR, ")")
        consequent = self._statement()
        alternate = None
        if self._match(TokenType.KEYWORD, "else"):
            alternate = self._statement()
        return ast.IfStatement(test, consequent, alternate, line=keyword.line)

    def _while_statement(self) -> ast.WhileStatement:
        keyword = self._expect(TokenType.KEYWORD, "while")
        self._expect(TokenType.PUNCTUATOR, "(")
        test = self._expression()
        self._expect(TokenType.PUNCTUATOR, ")")
        body = self._statement()
        return ast.WhileStatement(test, body, line=keyword.line)

    def _do_while_statement(self) -> ast.DoWhileStatement:
        keyword = self._expect(TokenType.KEYWORD, "do")
        body = self._statement()
        self._expect(TokenType.KEYWORD, "while")
        self._expect(TokenType.PUNCTUATOR, "(")
        test = self._expression()
        self._expect(TokenType.PUNCTUATOR, ")")
        self._expect_semicolon()
        return ast.DoWhileStatement(body, test, line=keyword.line)

    def _switch_statement(self) -> ast.SwitchStatement:
        keyword = self._expect(TokenType.KEYWORD, "switch")
        self._expect(TokenType.PUNCTUATOR, "(")
        discriminant = self._expression()
        self._expect(TokenType.PUNCTUATOR, ")")
        self._expect(TokenType.PUNCTUATOR, "{")
        cases: list[tuple[ast.Expression | None, list[ast.Statement]]] = []
        seen_default = False
        while not self._check(TokenType.PUNCTUATOR, "}"):
            if self._match(TokenType.KEYWORD, "case"):
                test = self._expression()
            elif self._match(TokenType.KEYWORD, "default"):
                if seen_default:
                    token = self._peek()
                    raise JsSyntaxError(
                        "duplicate default clause", token.line, token.column
                    )
                seen_default = True
                test = None
            else:
                token = self._peek()
                raise JsSyntaxError(
                    f"expected 'case' or 'default', found {token.value!r}",
                    token.line,
                    token.column,
                )
            self._expect(TokenType.PUNCTUATOR, ":")
            body: list[ast.Statement] = []
            while not self._check(TokenType.PUNCTUATOR, "}") and not self._check(
                TokenType.KEYWORD, "case"
            ) and not self._check(TokenType.KEYWORD, "default"):
                body.append(self._statement())
            cases.append((test, body))
        self._expect(TokenType.PUNCTUATOR, "}")
        return ast.SwitchStatement(discriminant, cases, line=keyword.line)

    def _throw_statement(self) -> ast.ThrowStatement:
        keyword = self._expect(TokenType.KEYWORD, "throw")
        argument = self._expression()
        self._expect_semicolon()
        return ast.ThrowStatement(argument, line=keyword.line)

    def _try_statement(self) -> ast.TryStatement:
        keyword = self._expect(TokenType.KEYWORD, "try")
        block = self._block()
        catch_param = None
        catch_block = None
        finally_block = None
        if self._match(TokenType.KEYWORD, "catch"):
            self._expect(TokenType.PUNCTUATOR, "(")
            catch_param = self._expect(TokenType.IDENTIFIER).value
            self._expect(TokenType.PUNCTUATOR, ")")
            catch_block = self._block()
        if self._match(TokenType.KEYWORD, "finally"):
            finally_block = self._block()
        if catch_block is None and finally_block is None:
            raise JsSyntaxError(
                "try requires catch or finally", keyword.line, keyword.column
            )
        return ast.TryStatement(
            block, catch_param, catch_block, finally_block, line=keyword.line
        )

    def _for_statement(self) -> ast.Statement:
        keyword = self._expect(TokenType.KEYWORD, "for")
        self._expect(TokenType.PUNCTUATOR, "(")
        for_in = self._try_for_in(keyword)
        if for_in is not None:
            return for_in
        init: Optional[ast.Statement] = None
        if not self._check(TokenType.PUNCTUATOR, ";"):
            if self._check(TokenType.KEYWORD, "var"):
                init = self._var_declaration()
            else:
                init = ast.ExpressionStatement(self._expression(), line=keyword.line)
        self._expect(TokenType.PUNCTUATOR, ";")
        test = None
        if not self._check(TokenType.PUNCTUATOR, ";"):
            test = self._expression()
        self._expect(TokenType.PUNCTUATOR, ";")
        update = None
        if not self._check(TokenType.PUNCTUATOR, ")"):
            update = self._expression()
        self._expect(TokenType.PUNCTUATOR, ")")
        body = self._statement()
        return ast.ForStatement(init, test, update, body, line=keyword.line)

    def _try_for_in(self, keyword: Token) -> Optional[ast.ForInStatement]:
        """Parse ``for (var? name in expr)``; returns None if not a for-in."""
        declare = self._check(TokenType.KEYWORD, "var")
        name_offset = 1 if declare else 0
        name_token = self._peek(name_offset)
        in_token = self._peek(name_offset + 1)
        is_for_in = (
            name_token.type is TokenType.IDENTIFIER
            and in_token.type is TokenType.KEYWORD
            and in_token.value == "in"
        )
        if not is_for_in:
            return None
        if declare:
            self._advance()
        variable = self._advance().value
        self._advance()  # 'in'
        obj = self._expression()
        self._expect(TokenType.PUNCTUATOR, ")")
        body = self._statement()
        return ast.ForInStatement(variable, declare, obj, body, line=keyword.line)

    def _return_statement(self) -> ast.ReturnStatement:
        keyword = self._expect(TokenType.KEYWORD, "return")
        argument = None
        if not self._check(TokenType.PUNCTUATOR, ";") and not self._check(
            TokenType.PUNCTUATOR, "}"
        ) and not self._check(TokenType.EOF):
            argument = self._expression()
        self._expect_semicolon()
        return ast.ReturnStatement(argument, line=keyword.line)

    def _break_statement(self) -> ast.BreakStatement:
        keyword = self._expect(TokenType.KEYWORD, "break")
        self._expect_semicolon()
        return ast.BreakStatement(line=keyword.line)

    def _continue_statement(self) -> ast.ContinueStatement:
        keyword = self._expect(TokenType.KEYWORD, "continue")
        self._expect_semicolon()
        return ast.ContinueStatement(line=keyword.line)

    # -- expressions ---------------------------------------------------------------

    def _expression(self) -> ast.Expression:
        expression = self._assignment_expression()
        # Comma operator: evaluate left, yield right.  Represent as a
        # BinaryOp with operator ',' so the interpreter can handle it.
        while self._check(TokenType.PUNCTUATOR, ",") and False:
            pass  # the comma operator is not part of the subset
        return expression

    def _assignment_expression(self) -> ast.Expression:
        left = self._conditional_expression()
        token = self._peek()
        if token.type is TokenType.PUNCTUATOR and token.value in _ASSIGNMENT_OPS:
            if not isinstance(left, (ast.Identifier, ast.Member, ast.Index)):
                raise JsSyntaxError("invalid assignment target", token.line, token.column)
            self._advance()
            value = self._assignment_expression()
            return ast.Assignment(token.value, left, value, line=token.line)
        return left

    def _conditional_expression(self) -> ast.Expression:
        test = self._binary_expression(0)
        question = self._match(TokenType.PUNCTUATOR, "?")
        if question is None:
            return test
        consequent = self._assignment_expression()
        self._expect(TokenType.PUNCTUATOR, ":")
        alternate = self._assignment_expression()
        return ast.Conditional(test, consequent, alternate, line=question.line)

    def _binary_expression(self, min_precedence: int) -> ast.Expression:
        left = self._unary_expression()
        while True:
            token = self._peek()
            is_operator = (
                token.type is TokenType.PUNCTUATOR
                or (token.type is TokenType.KEYWORD and token.value == "in")
            )
            precedence = _BINARY_PRECEDENCE.get(token.value) if is_operator else None
            if precedence is None or precedence <= min_precedence:
                return left
            self._advance()
            right = self._binary_expression(precedence)
            if token.value in ("&&", "||"):
                left = ast.LogicalOp(token.value, left, right, line=token.line)
            else:
                left = ast.BinaryOp(token.value, left, right, line=token.line)

    def _unary_expression(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.PUNCTUATOR and token.value in ("-", "+", "!"):
            self._advance()
            return ast.UnaryOp(token.value, self._unary_expression(), line=token.line)
        if token.type is TokenType.KEYWORD and token.value in ("typeof", "delete"):
            self._advance()
            return ast.UnaryOp(token.value, self._unary_expression(), line=token.line)
        if token.type is TokenType.PUNCTUATOR and token.value in ("++", "--"):
            self._advance()
            target = self._unary_expression()
            self._require_update_target(target, token)
            return ast.UpdateOp(token.value, target, prefix=True, line=token.line)
        return self._postfix_expression()

    @staticmethod
    def _require_update_target(target: ast.Expression, token: Token) -> None:
        if not isinstance(target, (ast.Identifier, ast.Member, ast.Index)):
            raise JsSyntaxError("invalid update target", token.line, token.column)

    def _postfix_expression(self) -> ast.Expression:
        expression = self._call_expression()
        token = self._peek()
        if token.type is TokenType.PUNCTUATOR and token.value in ("++", "--"):
            self._require_update_target(expression, token)
            self._advance()
            return ast.UpdateOp(token.value, expression, prefix=False, line=token.line)
        return expression

    def _call_expression(self) -> ast.Expression:
        if self._check(TokenType.KEYWORD, "new"):
            keyword = self._advance()
            callee = self._member_chain(self._primary_expression(), calls=False)
            arguments: list[ast.Expression] = []
            if self._check(TokenType.PUNCTUATOR, "("):
                arguments = self._argument_list()
            expression: ast.Expression = ast.New(callee, arguments, line=keyword.line)
            return self._member_chain(expression, calls=True)
        return self._member_chain(self._primary_expression(), calls=True)

    def _member_chain(self, expression: ast.Expression, calls: bool) -> ast.Expression:
        while True:
            token = self._peek()
            if self._match(TokenType.PUNCTUATOR, "."):
                name_token = self._peek()
                if name_token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                    raise JsSyntaxError(
                        "expected property name", name_token.line, name_token.column
                    )
                self._advance()
                expression = ast.Member(expression, name_token.value, line=token.line)
            elif self._check(TokenType.PUNCTUATOR, "["):
                self._advance()
                index = self._expression()
                self._expect(TokenType.PUNCTUATOR, "]")
                expression = ast.Index(expression, index, line=token.line)
            elif calls and self._check(TokenType.PUNCTUATOR, "("):
                arguments = self._argument_list()
                expression = ast.Call(expression, arguments, line=token.line)
            else:
                return expression

    def _argument_list(self) -> list[ast.Expression]:
        self._expect(TokenType.PUNCTUATOR, "(")
        arguments: list[ast.Expression] = []
        if not self._check(TokenType.PUNCTUATOR, ")"):
            while True:
                arguments.append(self._assignment_expression())
                if not self._match(TokenType.PUNCTUATOR, ","):
                    break
        self._expect(TokenType.PUNCTUATOR, ")")
        return arguments

    def _primary_expression(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            raw = token.value
            value = float(int(raw, 16)) if raw.lower().startswith("0x") else float(raw)
            return ast.NumberLiteral(value, line=token.line)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.StringLiteral(token.value, line=token.line)
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return ast.Identifier(token.value, line=token.line)
        if token.type is TokenType.KEYWORD:
            return self._keyword_expression(token)
        if self._match(TokenType.PUNCTUATOR, "("):
            expression = self._expression()
            self._expect(TokenType.PUNCTUATOR, ")")
            return expression
        if self._check(TokenType.PUNCTUATOR, "["):
            return self._array_literal()
        if self._check(TokenType.PUNCTUATOR, "{"):
            return self._object_literal()
        raise JsSyntaxError(f"unexpected token {token.value!r}", token.line, token.column)

    def _keyword_expression(self, token: Token) -> ast.Expression:
        simple = {
            "true": lambda: ast.BooleanLiteral(True, line=token.line),
            "false": lambda: ast.BooleanLiteral(False, line=token.line),
            "null": lambda: ast.NullLiteral(line=token.line),
            "undefined": lambda: ast.UndefinedLiteral(line=token.line),
            "this": lambda: ast.ThisExpression(line=token.line),
        }.get(token.value)
        if simple is not None:
            self._advance()
            return simple()
        if token.value == "function":
            return self._function_expression()
        raise JsSyntaxError(f"unexpected keyword {token.value!r}", token.line, token.column)

    def _function_expression(self) -> ast.FunctionExpression:
        keyword = self._expect(TokenType.KEYWORD, "function")
        name = None
        if self._check(TokenType.IDENTIFIER):
            name = self._advance().value
        params = self._parameter_list()
        body = self._block()
        return ast.FunctionExpression(name, params, body, line=keyword.line)

    def _array_literal(self) -> ast.ArrayLiteral:
        open_bracket = self._expect(TokenType.PUNCTUATOR, "[")
        elements: list[ast.Expression] = []
        if not self._check(TokenType.PUNCTUATOR, "]"):
            while True:
                elements.append(self._assignment_expression())
                if not self._match(TokenType.PUNCTUATOR, ","):
                    break
        self._expect(TokenType.PUNCTUATOR, "]")
        return ast.ArrayLiteral(elements, line=open_bracket.line)

    def _object_literal(self) -> ast.ObjectLiteral:
        open_brace = self._expect(TokenType.PUNCTUATOR, "{")
        properties: list[tuple[str, ast.Expression]] = []
        if not self._check(TokenType.PUNCTUATOR, "}"):
            while True:
                key_token = self._peek()
                if key_token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                    key = key_token.value
                elif key_token.type is TokenType.STRING:
                    key = key_token.value
                elif key_token.type is TokenType.NUMBER:
                    key = key_token.value
                else:
                    raise JsSyntaxError(
                        "expected property key", key_token.line, key_token.column
                    )
                self._advance()
                self._expect(TokenType.PUNCTUATOR, ":")
                properties.append((key, self._assignment_expression()))
                if not self._match(TokenType.PUNCTUATOR, ","):
                    break
        self._expect(TokenType.PUNCTUATOR, "}")
        return ast.ObjectLiteral(properties, line=open_brace.line)


def parse_program(source: str) -> ast.Program:
    """Parse ``source`` as a program."""
    return Parser(source).parse_program()


def parse_expression(source: str) -> ast.Expression:
    """Parse ``source`` as a single expression."""
    return Parser(source).parse_expression()
