"""JavaScript substrate: lexer, parser, interpreter and debugger API.

A from-scratch interpreter for the JavaScript subset that AJAX pages
exercise.  It replaces the Rhino engine of the thesis and, crucially,
reproduces the two Rhino facilities hot-node detection depends on
(section 4.4): an inspectable call stack with actual argument values,
and an attachable debugger whose ``on_enter`` hook can intercept calls.
"""

from repro.js.debugger import CallStack, Debugger, Intercept, StackFrame
from repro.js.environment import Environment
from repro.js.interpreter import Interpreter, JsStepLimitError, JsThrownValue
from repro.js.lexer import Lexer, tokenize
from repro.js.parser import Parser, parse_expression, parse_program
from repro.js.values import (
    HostConstructor,
    HostObject,
    JSArray,
    JSFunction,
    JSObject,
    NativeFunction,
    UNDEFINED,
    is_callable,
    is_truthy,
    to_number,
    to_string,
    type_of,
)

__all__ = [
    "CallStack",
    "Debugger",
    "Intercept",
    "StackFrame",
    "Environment",
    "Interpreter",
    "JsStepLimitError",
    "JsThrownValue",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_expression",
    "parse_program",
    "HostConstructor",
    "HostObject",
    "JSArray",
    "JSFunction",
    "JSObject",
    "NativeFunction",
    "UNDEFINED",
    "is_callable",
    "is_truthy",
    "to_number",
    "to_string",
    "type_of",
]
