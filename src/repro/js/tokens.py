"""Token kinds produced by the JavaScript lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Lexical categories of the supported JavaScript subset."""

    NUMBER = enum.auto()
    STRING = enum.auto()
    IDENTIFIER = enum.auto()
    KEYWORD = enum.auto()
    PUNCTUATOR = enum.auto()
    EOF = enum.auto()


#: Reserved words recognized by the lexer.
KEYWORDS = frozenset(
    {
        "var",
        "function",
        "return",
        "if",
        "else",
        "while",
        "for",
        "break",
        "continue",
        "true",
        "false",
        "null",
        "undefined",
        "new",
        "typeof",
        "this",
        "in",
        "delete",
        "do",
        "switch",
        "case",
        "default",
        "throw",
        "try",
        "catch",
        "finally",
    }
)

#: Multi-character punctuators, longest first so maximal munch works.
PUNCTUATORS = (
    "===",
    "!==",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    ".",
    ":",
    "?",
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    type: TokenType
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"
