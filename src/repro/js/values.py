"""Runtime values of the JavaScript subset.

Python natives are reused where the semantics line up (``float`` for
numbers, ``str`` for strings, ``bool`` for booleans, ``None`` for
``null``).  ``undefined`` is the :data:`UNDEFINED` singleton.  Objects,
arrays and functions get small dedicated classes, and host objects
(``document``, DOM elements, ``XMLHttpRequest``) plug in through the
:class:`HostObject` base class.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import JsTypeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.js import ast
    from repro.js.environment import Environment
    from repro.js.interpreter import Interpreter


class _Undefined:
    """The unique ``undefined`` value."""

    _instance: Optional["_Undefined"] = None

    def __new__(cls) -> "_Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undefined"

    def __bool__(self) -> bool:
        return False


#: The ``undefined`` singleton.
UNDEFINED = _Undefined()


class JSObject:
    """A plain mutable JavaScript object (string-keyed property map)."""

    def __init__(self, properties: Optional[dict[str, Any]] = None) -> None:
        self.properties: dict[str, Any] = dict(properties or {})

    def get(self, name: str) -> Any:
        return self.properties.get(name, UNDEFINED)

    def set(self, name: str, value: Any) -> None:
        self.properties[name] = value

    def delete(self, name: str) -> bool:
        return self.properties.pop(name, None) is not None

    def keys(self) -> list[str]:
        return list(self.properties)

    def __repr__(self) -> str:
        return f"JSObject({self.properties!r})"


class JSArray:
    """A JavaScript array backed by a Python list."""

    def __init__(self, elements: Optional[list[Any]] = None) -> None:
        self.elements: list[Any] = list(elements or [])

    def get_index(self, index: int) -> Any:
        if 0 <= index < len(self.elements):
            return self.elements[index]
        return UNDEFINED

    def set_index(self, index: int, value: Any) -> None:
        if index < 0:
            raise JsTypeError(f"invalid array index {index}")
        while len(self.elements) <= index:
            self.elements.append(UNDEFINED)
        self.elements[index] = value

    @property
    def length(self) -> int:
        return len(self.elements)

    def __repr__(self) -> str:
        return f"JSArray({self.elements!r})"


class JSFunction:
    """A user-defined function: parameters, body and defining scope."""

    def __init__(
        self,
        name: Optional[str],
        params: list[str],
        body: "ast.Block",
        closure: "Environment",
    ) -> None:
        self.name = name or "<anonymous>"
        self.params = params
        self.body = body
        self.closure = closure

    def __repr__(self) -> str:
        return f"JSFunction({self.name}/{len(self.params)})"


class NativeFunction:
    """A Python callable exposed to scripts.

    The callable receives ``(interpreter, this, args)`` and returns a JS
    value.  ``name`` shows up in stack traces and hot-node keys.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[["Interpreter", Any, list[Any]], Any],
    ) -> None:
        self.name = name
        self.fn = fn

    def __repr__(self) -> str:
        return f"NativeFunction({self.name})"


class HostObject:
    """Base class for Python objects exposed to scripts.

    Subclasses override :meth:`js_get` / :meth:`js_set`; methods are
    usually returned as :class:`NativeFunction` bound to the host object.
    """

    #: Name shown by ``typeof`` and in error messages.
    host_class = "HostObject"

    def js_get(self, name: str) -> Any:
        """Read property ``name``; default is ``undefined``."""
        return UNDEFINED

    def js_set(self, name: str, value: Any) -> None:
        """Write property ``name``; default raises."""
        raise JsTypeError(f"cannot set property {name!r} on {self.host_class}")

    def js_keys(self) -> list[str]:
        """Enumerable property names (used by ``for-in``)."""
        return []

    def __repr__(self) -> str:
        return f"<{self.host_class}>"


class HostConstructor:
    """A host class constructible with ``new`` (e.g. ``XMLHttpRequest``)."""

    def __init__(self, name: str, construct: Callable[["Interpreter", list[Any]], Any]):
        self.name = name
        self.construct = construct

    def __repr__(self) -> str:
        return f"HostConstructor({self.name})"


# -- conversions ---------------------------------------------------------------


def is_callable(value: Any) -> bool:
    """Whether ``value`` can be invoked."""
    return isinstance(value, (JSFunction, NativeFunction, HostConstructor))


def is_truthy(value: Any) -> bool:
    """ToBoolean."""
    if value is UNDEFINED or value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0 and value == value  # NaN is falsy
    if isinstance(value, str):
        return bool(value)
    return True


def to_number(value: Any) -> float:
    """ToNumber (NaN is represented as ``float('nan')``)."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if value is None:
        return 0.0
    if value is UNDEFINED:
        return float("nan")
    if isinstance(value, str):
        stripped = value.strip()
        if not stripped:
            return 0.0
        try:
            if stripped.lower().startswith("0x"):
                return float(int(stripped, 16))
            return float(stripped)
        except ValueError:
            return float("nan")
    return float("nan")


def to_string(value: Any) -> str:
    """ToString, matching JavaScript's display conventions for numbers."""
    if value is UNDEFINED:
        return "undefined"
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value != value:
            return "NaN"
        if value == float("inf"):
            return "Infinity"
        if value == float("-inf"):
            return "-Infinity"
        if value.is_integer() and abs(value) < 1e21:
            return str(int(value))
        return repr(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return value
    if isinstance(value, JSArray):
        return ",".join(to_string(element) for element in value.elements)
    if isinstance(value, JSObject):
        return "[object Object]"
    if isinstance(value, (JSFunction, NativeFunction)):
        return f"function {getattr(value, 'name', '')}() {{ [code] }}"
    if isinstance(value, HostObject):
        return f"[object {value.host_class}]"
    return str(value)


def type_of(value: Any) -> str:
    """The ``typeof`` operator."""
    if value is UNDEFINED:
        return "undefined"
    if value is None:
        return "object"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if is_callable(value):
        return "function"
    return "object"
