"""Query-processing experiments: Tables 7.4, 7.5 and Figure 7.9 (§7.5)."""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache

from repro.experiments import datasets
from repro.experiments.harness import format_table
from repro.search import SearchEngine
from repro.sites import WorkloadQuery, full_workload, paper_queries


@lru_cache(maxsize=8)
def build_engines(num_videos: int = datasets.QUERY_VIDEOS) -> tuple[SearchEngine, SearchEngine]:
    """(traditional, ajax) search engines over the query dataset."""
    crawled = datasets.crawl_ajax(num_videos)
    pageranks = datasets.precrawl(max(num_videos, datasets.FULL_VIDEOS)).pageranks
    ajax = SearchEngine.build(crawled.models, pageranks=pageranks)
    traditional = SearchEngine.build(crawled.models, pageranks=pageranks, max_state_index=1)
    return traditional, ajax


@dataclass(frozen=True)
class QueryOccurrences:
    """One row of Table 7.4."""

    query_id: str
    query: str
    first_page: int  # results in the traditional (first-state) index
    all_pages: int  # results in the full AJAX index


def table_7_4(num_videos: int = datasets.QUERY_VIDEOS) -> list[QueryOccurrences]:
    traditional, ajax = build_engines(num_videos)
    rows = []
    for query in paper_queries():
        rows.append(
            QueryOccurrences(
                query_id=query.query_id,
                query=query.text,
                first_page=traditional.result_count(query.text),
                all_pages=ajax.result_count(query.text),
            )
        )
    return rows


def format_table_7_4(rows: list[QueryOccurrences]) -> str:
    table_rows = [(r.query_id, r.query, r.first_page, r.all_pages) for r in rows]
    return format_table(
        ["ID", "Query", "Occurrences First Page", "Occurrences All Pages"],
        table_rows,
        title="Table 7.4: The query workload",
    )


@dataclass(frozen=True)
class QueryTiming:
    """One row of Table 7.5 / one pair of bars in Figure 7.9."""

    query_id: str
    query: str
    traditional_ms: float
    ajax_ms: float
    traditional_results: int
    ajax_results: int

    @property
    def traditional_throughput(self) -> float:
        """Results per second on the traditional index."""
        if self.traditional_ms == 0:
            return 0.0
        return self.traditional_results / (self.traditional_ms / 1000.0)

    @property
    def ajax_throughput(self) -> float:
        if self.ajax_ms == 0:
            return 0.0
        return self.ajax_results / (self.ajax_ms / 1000.0)


def _time_query(engine: SearchEngine, query: str, repeats: int = 5) -> tuple[float, int]:
    """Median wall-clock of ``engine.search(query)`` plus result count."""
    durations = []
    count = 0
    for _ in range(repeats):
        start = time.perf_counter()
        results = engine.search(query)
        durations.append((time.perf_counter() - start) * 1000.0)
        count = len(results)
    durations.sort()
    return durations[len(durations) // 2], count


def table_7_5(num_videos: int = datasets.QUERY_VIDEOS, repeats: int = 5) -> list[QueryTiming]:
    traditional, ajax = build_engines(num_videos)
    rows = []
    for query in paper_queries():
        trad_ms, trad_count = _time_query(traditional, query.text, repeats)
        ajax_ms, ajax_count = _time_query(ajax, query.text, repeats)
        rows.append(
            QueryTiming(
                query_id=query.query_id,
                query=query.text,
                traditional_ms=trad_ms,
                ajax_ms=ajax_ms,
                traditional_results=trad_count,
                ajax_results=ajax_count,
            )
        )
    return rows


def format_table_7_5(rows: list[QueryTiming]) -> str:
    table_rows = [
        (r.query_id, r.query, f"{r.traditional_ms:.3f}", f"{r.ajax_ms:.3f}")
        for r in rows
    ]
    return format_table(
        ["ID", "Query", "Trad. (ms)", "AJAX (ms)"],
        table_rows,
        title="Table 7.5: Query processing times",
    )


def format_figure_7_9(rows: list[QueryTiming]) -> str:
    table_rows = [
        (
            r.query_id,
            r.query,
            f"{r.traditional_throughput:,.0f}",
            f"{r.ajax_throughput:,.0f}",
            r.traditional_results,
            r.ajax_results,
        )
        for r in rows
    ]
    return format_table(
        ["ID", "Query", "Trad. results/s", "AJAX results/s", "Trad. hits", "AJAX hits"],
        table_rows,
        title="Figure 7.9: Query throughput, traditional vs AJAX search",
    )


def workload_queries(count: int = 100) -> list[WorkloadQuery]:
    """The full 100-query workload used by §7.6/§7.7."""
    return full_workload(count)
