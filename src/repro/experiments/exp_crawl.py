"""Crawling-performance experiments: Table 7.2, Figure 7.3, Figure 7.4."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import datasets
from repro.experiments.harness import format_table


@dataclass(frozen=True)
class OverheadRow:
    """One row of Table 7.2 / 7.3: a time and its AJAX/traditional ratio."""

    label: str
    traditional_ms: float
    ajax_ms: float

    @property
    def ratio(self) -> float:
        return self.ajax_ms / self.traditional_ms if self.traditional_ms else 0.0


@dataclass(frozen=True)
class CrawlOverhead:
    """Table 7.2: total, per-page and per-state crawl times."""

    total: OverheadRow
    per_page: OverheadRow
    per_state: OverheadRow


def table_7_2(num_videos: int = datasets.FULL_VIDEOS) -> CrawlOverhead:
    trad = datasets.crawl_traditional(num_videos).report
    ajax = datasets.crawl_ajax(num_videos).report
    return CrawlOverhead(
        total=OverheadRow("Total time", trad.total_time_ms, ajax.total_time_ms),
        per_page=OverheadRow(
            "Mean per page", trad.mean_time_per_page_ms, ajax.mean_time_per_page_ms
        ),
        per_state=OverheadRow(
            "Mean per state", trad.mean_time_per_state_ms, ajax.mean_time_per_state_ms
        ),
    )


def format_table_7_2(overhead: CrawlOverhead) -> str:
    rows = [
        (row.label, row.traditional_ms, row.ajax_ms, f"x{row.ratio:.2f}")
        for row in (overhead.total, overhead.per_page, overhead.per_state)
    ]
    return format_table(
        ["", "Trad. (ms)", "AJAX (ms)", "AJAX/Trad"],
        rows,
        title="Table 7.2: Crawling times and overhead of AJAX crawling",
    )


#: The crawl-time buckets of Figure 7.3 (seconds).
TIME_BUCKETS = ((0, 2), (2, 5), (5, 10), (10, 20), (20, 30), (30, float("inf")))


def figure_7_3(num_videos: int = datasets.FULL_VIDEOS) -> dict[str, int]:
    """Histogram of pages per crawling-time range."""
    crawled = datasets.crawl_ajax(num_videos)
    histogram = {_bucket_label(low, high): 0 for low, high in TIME_BUCKETS}
    for page in crawled.report.pages:
        seconds = page.crawl_time_ms / 1000.0
        for low, high in TIME_BUCKETS:
            if low <= seconds < high:
                histogram[_bucket_label(low, high)] += 1
                break
    return histogram


def _bucket_label(low: float, high: float) -> str:
    if high == float("inf"):
        return f">{low:g}s"
    return f"{low:g}-{high:g}s"


def format_figure_7_3(histogram: dict[str, int]) -> str:
    total = sum(histogram.values())
    rows = [
        (bucket, count, f"{count / total:.1%}" if total else "0%")
        for bucket, count in histogram.items()
    ]
    return format_table(
        ["Crawl time", "Pages", "Share"],
        rows,
        title="Figure 7.3: Distribution of per-page crawling times",
    )


@dataclass(frozen=True)
class StateTimePoint:
    """One x-position of Figure 7.4: mean times for a given state count."""

    states: int
    pages: int
    mean_crawl_time_ms: float
    mean_processing_time_ms: float  # crawl time minus network time


def figure_7_4(num_videos: int = datasets.FULL_VIDEOS) -> list[StateTimePoint]:
    """Crawling time per video vs number of crawled states (± network)."""
    crawled = datasets.crawl_ajax(num_videos)
    by_states: dict[int, list] = {}
    for page in crawled.report.pages:
        by_states.setdefault(page.states, []).append(page)
    points = []
    for states in sorted(by_states):
        group = by_states[states]
        points.append(
            StateTimePoint(
                states=states,
                pages=len(group),
                mean_crawl_time_ms=sum(p.crawl_time_ms for p in group) / len(group),
                mean_processing_time_ms=sum(p.processing_time_ms for p in group)
                / len(group),
            )
        )
    return points


def format_figure_7_4(points: list[StateTimePoint]) -> str:
    rows = [
        (p.states, p.pages, p.mean_crawl_time_ms, p.mean_processing_time_ms)
        for p in points
    ]
    return format_table(
        ["States", "Pages", "Crawl time (ms)", "Minus network (ms)"],
        rows,
        title="Figure 7.4: Crawling time vs number of states (linear growth)",
    )


def linearity_correlation(points: list[StateTimePoint]) -> float:
    """Pearson correlation of states vs mean crawl time (≈1 when linear)."""
    xs = [float(p.states) for p in points]
    ys = [p.mean_crawl_time_ms for p in points]
    n = len(points)
    if n < 2:
        return 1.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs) ** 0.5
    var_y = sum((y - mean_y) ** 2 for y in ys) ** 0.5
    if var_x == 0 or var_y == 0:
        return 1.0
    return cov / (var_x * var_y)
