"""Dataset-statistics experiments: Table 7.1, Figure 7.1, Figure 7.2."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import datasets
from repro.experiments.harness import format_table


@dataclass(frozen=True)
class DatasetStatistics:
    """The rows of Table 7.1."""

    num_pages: int
    total_states: int
    total_events: int
    avg_events_per_page: float
    events_leading_to_network: int

    @property
    def network_reduction(self) -> float:
        """Fraction of events whose network call was avoided (~80%)."""
        if self.total_events == 0:
            return 0.0
        return 1.0 - self.events_leading_to_network / self.total_events


def table_7_1(num_videos: int = datasets.FULL_VIDEOS) -> DatasetStatistics:
    """Crawl the dataset with the hot-node policy and report Table 7.1."""
    crawled = datasets.crawl_ajax(num_videos)
    report = crawled.report
    return DatasetStatistics(
        num_pages=report.num_pages,
        total_states=report.total_states,
        total_events=report.total_events,
        avg_events_per_page=report.mean_events_per_page,
        events_leading_to_network=report.total_ajax_calls,
    )


def format_table_7_1(stats: DatasetStatistics) -> str:
    rows = [
        ("Number of Pages", stats.num_pages),
        ("Total Number of States", stats.total_states),
        ("Total Number of Events", stats.total_events),
        ("Avg. Number of Events per Page", stats.avg_events_per_page),
        ("Events leading to Network Communication", stats.events_leading_to_network),
        ("Network-call reduction by hot nodes", f"{stats.network_reduction:.0%}"),
    ]
    return format_table(
        ["Parameter", "Value"], rows, title="Table 7.1: Statistics of the dataset"
    )


def figure_7_1(num_videos: int = datasets.FULL_VIDEOS) -> dict[int, int]:
    """Distribution of videos per number of comment pages (ground truth)."""
    site = datasets.get_site(num_videos)
    return site.distribution.histogram(range(num_videos))


def format_figure_7_1(histogram: dict[int, int]) -> str:
    total = sum(histogram.values())
    rows = [
        (pages, count, f"{count / total:.1%}", "#" * max(1, round(40 * count / total)))
        for pages, count in sorted(histogram.items())
    ]
    return format_table(
        ["Comment pages", "Videos", "Share", ""],
        rows,
        title="Figure 7.1: Distribution of videos by number of comment pages",
    )


@dataclass(frozen=True)
class GrowthPoint:
    """One x-position of Figure 7.2."""

    videos: int
    states: int
    events: int


def figure_7_2(
    subset_sizes: tuple[int, ...] = (20, 40, 60, 80, 100, 250, datasets.FULL_VIDEOS),
) -> list[GrowthPoint]:
    """#states and #events vs #crawled videos, from the full crawl's
    per-page metrics (prefix sums — no re-crawl needed)."""
    crawled = datasets.crawl_ajax(max(subset_sizes))
    pages = crawled.report.pages
    points = []
    for size in subset_sizes:
        prefix = pages[:size]
        points.append(
            GrowthPoint(
                videos=size,
                states=sum(page.states for page in prefix),
                events=sum(page.events_invoked for page in prefix),
            )
        )
    return points


def format_figure_7_2(points: list[GrowthPoint]) -> str:
    rows = [(p.videos, p.states, p.events, f"{p.events / max(p.states, 1):.2f}") for p in points]
    return format_table(
        ["Videos", "States", "Events", "Events/State"],
        rows,
        title="Figure 7.2: States and events vs number of crawled videos",
    )
