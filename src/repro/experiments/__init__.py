"""Experiment runners for every table and figure of chapter 7.

Each ``exp_*`` module computes one experiment's structured data and can
render it in the corresponding table/figure layout.  The ``benchmarks/``
directory wires these runners into pytest-benchmark targets; measured
outputs land in ``benchmarks/results/`` and are summarized in
EXPERIMENTS.md.
"""

from repro.experiments import datasets
from repro.experiments.harness import emit, format_table, save_result

__all__ = ["datasets", "emit", "format_table", "save_result"]
