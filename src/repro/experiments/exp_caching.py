"""Effects-of-caching experiments: Figures 7.5, 7.6 and 7.7 (§7.3).

For each subset size, the site is crawled twice with fresh crawlers —
once with the hot-node policy, once without — and the network calls,
network time and state throughput are compared.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import datasets
from repro.experiments.harness import format_table


@dataclass(frozen=True)
class CachingPoint:
    """One subset size of the §7.3 study, both crawler flavours."""

    videos: int
    #: Events that resulted in an actual network call.
    calls_with_cache: int
    calls_without_cache: int
    #: Virtual network time (ms).
    network_ms_with_cache: float
    network_ms_without_cache: float
    #: State throughput (states per virtual second).
    throughput_with_cache: float
    throughput_without_cache: float

    @property
    def call_reduction_factor(self) -> float:
        """~5x on YouTube (Figure 7.5)."""
        if self.calls_with_cache == 0:
            return 0.0
        return self.calls_without_cache / self.calls_with_cache

    @property
    def network_time_ratio(self) -> float:
        """cached/uncached network time, ~0.37 in the thesis (Fig. 7.6)."""
        if self.network_ms_without_cache == 0:
            return 0.0
        return self.network_ms_with_cache / self.network_ms_without_cache

    @property
    def throughput_gain(self) -> float:
        """cached/uncached state throughput, ~1.6 in the thesis (Fig. 7.7)."""
        if self.throughput_without_cache == 0:
            return 0.0
        return self.throughput_with_cache / self.throughput_without_cache


def caching_study(
    subset_sizes: tuple[int, ...] = datasets.CACHING_SUBSETS,
) -> list[CachingPoint]:
    """Run the §7.3 study over the given subset sizes."""
    points = []
    for size in subset_sizes:
        cached = datasets.crawl_ajax(size, use_hot_node=True).report
        plain = datasets.crawl_ajax(size, use_hot_node=False).report
        points.append(
            CachingPoint(
                videos=size,
                calls_with_cache=cached.total_ajax_calls,
                calls_without_cache=plain.total_ajax_calls,
                network_ms_with_cache=cached.total_network_time_ms,
                network_ms_without_cache=plain.total_network_time_ms,
                throughput_with_cache=cached.states_per_second,
                throughput_without_cache=plain.states_per_second,
            )
        )
    return points


def format_figure_7_5(points: list[CachingPoint]) -> str:
    rows = [
        (p.videos, p.calls_without_cache, p.calls_with_cache, f"x{p.call_reduction_factor:.1f}")
        for p in points
    ]
    return format_table(
        ["Videos", "Calls (no cache)", "Calls (cache)", "Reduction"],
        rows,
        title="Figure 7.5: AJAX events resulting in network calls, with/without caching",
    )


def format_figure_7_6(points: list[CachingPoint]) -> str:
    rows = [
        (
            p.videos,
            p.network_ms_without_cache,
            p.network_ms_with_cache,
            f"{p.network_time_ratio:.2f}",
        )
        for p in points
    ]
    return format_table(
        ["Videos", "Network ms (no cache)", "Network ms (cache)", "Ratio"],
        rows,
        title="Figure 7.6: Network time with and without the hot-node policy",
    )


def format_figure_7_7(points: list[CachingPoint]) -> str:
    rows = [
        (
            p.videos,
            f"{p.throughput_without_cache:.3f}",
            f"{p.throughput_with_cache:.3f}",
            f"x{p.throughput_gain:.2f}",
        )
        for p in points
    ]
    return format_table(
        ["Videos", "States/s (no cache)", "States/s (cache)", "Gain"],
        rows,
        title="Figure 7.7: State throughput with and without the hot-node policy",
    )
