"""Crawl-threshold and search-quality experiments: Figures 7.10 and 7.11.

Eleven indexes are built over the same crawled corpus, index *k*
covering the first *k* states of every page model (k = 1 is the
traditional index).  The 100-query workload is then run over every
index:

* Figure 7.10 — relative result throughput vs k (how query performance
  degrades as more AJAX content is indexed);
* Figure 7.11 — 1 − RelRecall vs k (how much recall is gained), with
  RelRecall_{1,k}(q) = |R_1(q)| / |R_k(q)| (eq. 7.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache

from repro.experiments import datasets
from repro.experiments.exp_query import workload_queries
from repro.experiments.harness import format_table
from repro.search import SearchEngine

#: The eleven index depths of §7.7 (1 = traditional, 11 = 10 extra states).
INDEX_DEPTHS = tuple(range(1, 12))


@lru_cache(maxsize=4)
def build_depth_indexes(
    num_videos: int = datasets.QUERY_VIDEOS,
) -> dict[int, SearchEngine]:
    """One engine per index depth k over the same crawl."""
    crawled = datasets.crawl_ajax(num_videos)
    return {
        depth: SearchEngine.build(crawled.models, max_state_index=depth)
        for depth in INDEX_DEPTHS
    }


@dataclass(frozen=True)
class ThresholdPoint:
    """One x-position of Figures 7.10/7.11."""

    states: int
    #: Total boolean results over the workload.
    total_results: int
    #: Number of workload queries.
    num_queries: int
    #: Wall-clock of running the whole workload once (ms, best of repeats).
    workload_ms: float
    #: Mean (1 - RelRecall_{1,k}) over answerable queries.
    recall_gain: float

    @property
    def throughput(self) -> float:
        """Query throughput (queries answered per second).

        This is the quantity whose AJAX/traditional *ratio* Figure 7.10
        plots: indexing more states makes every query slower (more
        postings merged, more results scored), so the relative
        throughput decreases with the crawl depth.
        """
        if self.workload_ms == 0:
            return 0.0
        return self.num_queries / (self.workload_ms / 1000.0)


def threshold_study(
    num_videos: int = datasets.QUERY_VIDEOS,
    query_count: int = 100,
    repeats: int = 3,
) -> list[ThresholdPoint]:
    """Run the workload over all eleven depth-limited indexes."""
    engines = build_depth_indexes(num_videos)
    queries = [query.text for query in workload_queries(query_count)]
    base_counts = {query: engines[1].result_count(query) for query in queries}
    points = []
    for depth in INDEX_DEPTHS:
        engine = engines[depth]
        best_ms = float("inf")
        counts: dict[str, int] = {}
        for _ in range(repeats):
            start = time.perf_counter()
            counts = {query: len(engine.search(query)) for query in queries}
            best_ms = min(best_ms, (time.perf_counter() - start) * 1000.0)
        gains = []
        for query in queries:
            if counts[query] > 0:
                gains.append(1.0 - base_counts[query] / counts[query])
        recall_gain = sum(gains) / len(gains) if gains else 0.0
        points.append(
            ThresholdPoint(
                states=depth,
                total_results=sum(counts.values()),
                num_queries=len(queries),
                workload_ms=best_ms,
                recall_gain=recall_gain,
            )
        )
    return points


def format_figure_7_10(points: list[ThresholdPoint]) -> str:
    """Relative result throughput of AJAX vs traditional per depth."""
    base = points[0].throughput or 1.0
    rows = [
        (
            p.states,
            p.total_results,
            f"{p.throughput:,.0f}",
            f"{p.throughput / base:.3f}",
        )
        for p in points
    ]
    return format_table(
        ["Indexed states", "Results", "Queries/s", "Relative throughput"],
        rows,
        title="Figure 7.10: Query throughput vs number of crawled states",
    )


def crawl_threshold(points: list[ThresholdPoint], limit: float = 0.4) -> int:
    """The §7.6 tuning rule: deepest k whose relative throughput ≥ limit."""
    base = points[0].throughput or 1.0
    feasible = [p.states for p in points if p.throughput / base >= limit]
    return max(feasible) if feasible else points[0].states


def format_figure_7_11(points: list[ThresholdPoint]) -> str:
    rows = [(p.states, f"{p.recall_gain:.3f}") for p in points]
    return format_table(
        ["Indexed states", "1 - RelRecall"],
        rows,
        title="Figure 7.11: 1 - RelRecall of traditional vs AJAX search",
    )


def recall_threshold(points: list[ThresholdPoint], target: float = 0.7) -> int:
    """The §7.7 rule: smallest k reaching ``target`` of the max gain."""
    max_gain = max(p.recall_gain for p in points) or 1.0
    for point in points:
        if point.recall_gain >= target * max_gain:
            return point.states
    return points[-1].states
