"""Parallelization experiments: Table 7.3 and Figure 7.8 (§7.4)."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.experiments import datasets
from repro.experiments.exp_crawl import OverheadRow
from repro.experiments.harness import format_table
from repro.parallel import MachineModel, MPAjaxCrawler, partition_urls

#: Partition size used by the parallel experiments (§8.2 example uses 50;
#: scaled with the dataset).
PARTITION_SIZE = 20
#: The thesis ran four parallel crawler processes (§7.4).
PROC_LINES = 4
#: The testbed: a dual-core Xeon.
MACHINE = MachineModel(cores=2, process_startup_ms=4000.0, serial_fraction=0.35)


@lru_cache(maxsize=16)
def _run(num_videos: int, lines: int, traditional: bool):
    site = datasets.get_site(max(num_videos, datasets.FULL_VIDEOS))
    urls = [site.video_url(i) for i in range(num_videos)]
    partitions = partition_urls(urls, PARTITION_SIZE)
    controller = MPAjaxCrawler(
        site,
        num_proc_lines=lines,
        traditional=traditional,
        machine=MACHINE,
        cost_model=datasets.experiment_cost_model(),
    )
    return controller.run_simulated([tuple(p) for p in partitions])


@dataclass(frozen=True)
class ParallelOverhead:
    """Table 7.3: parallel crawl times, traditional vs AJAX."""

    total: OverheadRow
    per_page: OverheadRow
    per_state: OverheadRow


def table_7_3(num_videos: int = datasets.FULL_VIDEOS) -> ParallelOverhead:
    trad = _run(num_videos, PROC_LINES, traditional=True)
    ajax = _run(num_videos, PROC_LINES, traditional=False)
    return ParallelOverhead(
        total=OverheadRow("Total time", trad.makespan_ms, ajax.makespan_ms),
        per_page=OverheadRow(
            "Mean per page", trad.mean_time_per_page_ms, ajax.mean_time_per_page_ms
        ),
        per_state=OverheadRow(
            "Mean per state", trad.mean_time_per_state_ms, ajax.mean_time_per_state_ms
        ),
    )


def format_table_7_3(overhead: ParallelOverhead) -> str:
    rows = [
        (
            row.label,
            row.traditional_ms / 1000.0,
            row.ajax_ms / 1000.0,
            f"x{row.ratio:.2f}",
        )
        for row in (overhead.total, overhead.per_page, overhead.per_state)
    ]
    return format_table(
        ["", "Parallel Trad. (s)", "Parallel AJAX (s)", "AJAX/Trad"],
        rows,
        title=f"Table 7.3: Parallel crawling times ({PROC_LINES} process lines)",
    )


@dataclass(frozen=True)
class ParallelGain:
    """Figure 7.8: serial vs parallel mean crawl time per video."""

    mode: str  # "Traditional" or "AJAX"
    serial_ms_per_page: float
    parallel_ms_per_page: float

    @property
    def reduction(self) -> float:
        """Fractional reduction (thesis: 27.5% trad, 25.6% AJAX)."""
        if self.serial_ms_per_page == 0:
            return 0.0
        return 1.0 - self.parallel_ms_per_page / self.serial_ms_per_page


def figure_7_8(num_videos: int = datasets.FULL_VIDEOS) -> list[ParallelGain]:
    gains = []
    for mode, traditional in (("Traditional", True), ("AJAX", False)):
        serial = _run(num_videos, 1, traditional)
        parallel = _run(num_videos, PROC_LINES, traditional)
        gains.append(
            ParallelGain(
                mode=mode,
                serial_ms_per_page=serial.mean_time_per_page_ms,
                parallel_ms_per_page=parallel.mean_time_per_page_ms,
            )
        )
    return gains


def format_figure_7_8(gains: list[ParallelGain]) -> str:
    rows = [
        (
            gain.mode,
            gain.serial_ms_per_page,
            gain.parallel_ms_per_page,
            f"-{gain.reduction:.1%}",
        )
        for gain in gains
    ]
    return format_table(
        ["Crawl mode", "Serial ms/page", f"{PROC_LINES}-line ms/page", "Reduction"],
        rows,
        title="Figure 7.8: Effect of parallelization on mean crawling time per video",
    )


def process_line_sweep(
    num_videos: int = datasets.FULL_VIDEOS, line_counts: tuple[int, ...] = (1, 2, 4, 8)
) -> list[tuple[int, float]]:
    """Extension: makespan vs number of process lines (ablation)."""
    return [
        (lines, _run(num_videos, lines, traditional=False).makespan_ms)
        for lines in line_counts
    ]
