"""Dataset construction for the chapter-7 experiments.

The thesis evaluates on *YouTube10000* (10 000 video pages) and a
2 500-page subset for query processing.  Crawling that many synthetic
pages is possible but slow in a test harness, so the default sizes here
are scaled down (overridable via environment variables); all reported
quantities are normalized (means, ratios, throughputs), so the *shape*
of every result is preserved.

Crawled datasets are memoized per configuration so that the many
benchmarks sharing one corpus pay for a crawl only once per process.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

from repro.clock import CostModel
from repro.crawler import AjaxCrawler, CrawlResult, CrawlerConfig, TraditionalCrawler
from repro.parallel import Precrawler, PrecrawlResult
from repro.sites import SiteConfig, SyntheticYouTube


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


#: The "YouTube10000" analogue used by crawling experiments.
FULL_VIDEOS = _env_int("REPRO_FULL_VIDEOS", 400)
#: The "2500-page index" analogue used by query experiments.
QUERY_VIDEOS = _env_int("REPRO_QUERY_VIDEOS", 250)
#: Subset sizes of the caching experiments (§7.3).
CACHING_SUBSETS = (10, 20, 40, 60, 80, 100)
#: The seed every experiment shares.
DATASET_SEED = _env_int("REPRO_DATASET_SEED", 7)


def experiment_cost_model() -> CostModel:
    """The deterministic cost model all experiments use."""
    return CostModel(network_jitter=0.15)


@lru_cache(maxsize=8)
def get_site(num_videos: int = FULL_VIDEOS, seed: int = DATASET_SEED) -> SyntheticYouTube:
    """The shared SimTube instance (pure function of its config)."""
    return SyntheticYouTube(SiteConfig(num_videos=num_videos, seed=seed))


@dataclass(frozen=True)
class CrawledDataset:
    """A site plus the outcome of crawling a prefix of its videos."""

    site: SyntheticYouTube
    urls: tuple[str, ...]
    result: CrawlResult
    crawler: object  # AjaxCrawler or TraditionalCrawler (for stats access)

    @property
    def report(self):
        return self.result.report

    @property
    def models(self):
        return self.result.models


@lru_cache(maxsize=32)
def crawl_ajax(
    num_videos: int,
    use_hot_node: bool = True,
    max_additional_states: int = 10,
    seed: int = DATASET_SEED,
    site_videos: int | None = None,
) -> CrawledDataset:
    """AJAX-crawl the first ``num_videos`` videos (memoized)."""
    site = get_site(site_videos or max(num_videos, FULL_VIDEOS), seed)
    urls = tuple(site.video_url(i) for i in range(num_videos))
    config = CrawlerConfig(
        use_hot_node=use_hot_node,
        max_additional_states=max_additional_states,
    )
    crawler = AjaxCrawler(site, config, cost_model=experiment_cost_model())
    result = crawler.crawl(list(urls))
    return CrawledDataset(site=site, urls=urls, result=result, crawler=crawler)


@lru_cache(maxsize=8)
def crawl_traditional(
    num_videos: int, seed: int = DATASET_SEED, site_videos: int | None = None
) -> CrawledDataset:
    """Traditionally crawl the first ``num_videos`` videos (memoized)."""
    site = get_site(site_videos or max(num_videos, FULL_VIDEOS), seed)
    urls = tuple(site.video_url(i) for i in range(num_videos))
    crawler = TraditionalCrawler(site, cost_model=experiment_cost_model())
    result = crawler.crawl(list(urls))
    return CrawledDataset(site=site, urls=urls, result=result, crawler=crawler)


@lru_cache(maxsize=4)
def precrawl(num_videos: int = FULL_VIDEOS, seed: int = DATASET_SEED) -> PrecrawlResult:
    """Hyperlink graph + PageRank of the first ``num_videos`` videos."""
    site = get_site(num_videos, seed)
    precrawler = Precrawler(site, max_pages=num_videos, cost_model=experiment_cost_model())
    return precrawler.run(site.video_url(0))


def clear_caches() -> None:
    """Drop all memoized datasets (tests that tune sizes use this)."""
    get_site.cache_clear()
    crawl_ajax.cache_clear()
    crawl_traditional.cache_clear()
    precrawl.cache_clear()
