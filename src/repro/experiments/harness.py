"""Formatting helpers shared by the benchmark harness.

Every experiment runner returns structured data; these helpers render it
in the row/series layout of the corresponding thesis table or figure so
that the benchmark output can be compared against the paper at a glance.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

#: Where benchmark runners persist their rendered output.
RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def save_result(name: str, text: str) -> Path:
    """Persist a rendered experiment output under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def emit(name: str, text: str) -> str:
    """Print and persist one experiment's rendered output."""
    print()
    print(text)
    save_result(name, text)
    return text
