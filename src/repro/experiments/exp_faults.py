"""Fault-tolerance experiment: throughput vs. injected server-error rate.

The thesis crawls a live site and simply assumes the server behaves; our
fault-injection layer (:mod:`repro.net.faults`) lets us measure how the
parallel crawler degrades when it does not.  For each 5xx rate the
synthetic YouTube site is wrapped in a :class:`FaultInjector` targeting
the AJAX comment endpoints, the crawl runs over four partitions with
retries enabled, and the study records completed pages, quarantined
events, retries and the resulting state throughput.

The headline property: the crawl *completes* at every fault rate —
failures cost throughput, never the partition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clock import CostModel
from repro.crawler import CrawlerConfig
from repro.experiments.harness import format_table
from repro.net.faults import FaultInjector, FaultPlan, FaultRule
from repro.parallel import MPAjaxCrawler, partition_urls
from repro.sites import SiteConfig, SyntheticYouTube

#: URL pattern of the AJAX endpoints the synthetic YouTube site serves.
AJAX_URL_PATTERN = r"/comments"


@dataclass(frozen=True)
class FaultPoint:
    """One fault rate of the robustness study."""

    fault_rate: float
    pages: int
    failed_pages: int
    states: int
    quarantined_events: int
    injected_faults: int
    retries: int
    failed_requests: int
    retry_time_ms: float
    makespan_ms: float

    @property
    def states_per_second(self) -> float:
        """State throughput over the run's virtual makespan."""
        seconds = self.makespan_ms / 1000.0
        return self.states / seconds if seconds > 0 else 0.0


def fault_study(
    rates: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3),
    num_videos: int = 12,
    partition_size: int = 3,
    num_proc_lines: int = 4,
    max_attempts: int = 3,
    seed: int = 7,
) -> list[FaultPoint]:
    """Crawl the same site under increasing injected 5xx rates."""
    points = []
    config = CrawlerConfig(retry_max_attempts=max_attempts)
    for rate in rates:
        site = SyntheticYouTube(SiteConfig(num_videos=num_videos, seed=seed))
        plan = FaultPlan([FaultRule(AJAX_URL_PATTERN, rate=rate)], seed=seed)
        server = FaultInjector(site, plan)
        controller = MPAjaxCrawler(
            server,
            num_proc_lines=num_proc_lines,
            config=config,
            cost_model=CostModel(network_jitter=0.0),
        )
        urls = [site.video_url(i) for i in range(num_videos)]
        run = controller.run_simulated(partition_urls(urls, partition_size))
        points.append(
            FaultPoint(
                fault_rate=rate,
                pages=run.total_pages,
                failed_pages=run.total_failed_pages,
                states=run.result.report.total_states,
                quarantined_events=run.result.report.total_events_quarantined,
                injected_faults=plan.num_injected,
                retries=run.stats.retries,
                failed_requests=run.stats.failed_requests,
                retry_time_ms=run.stats.retry_time_ms,
                makespan_ms=run.makespan_ms,
            )
        )
    return points


def format_fault_table(points: list[FaultPoint]) -> str:
    rows = [
        (
            f"{p.fault_rate:.0%}",
            p.pages,
            p.failed_pages,
            p.states,
            p.quarantined_events,
            p.injected_faults,
            p.retries,
            f"{p.retry_time_ms / 1000:.1f}",
            f"{p.states_per_second:.3f}",
        )
        for p in points
    ]
    return format_table(
        [
            "5xx rate",
            "Pages",
            "Failed",
            "States",
            "Quarantined",
            "Injected",
            "Retries",
            "Retry s",
            "States/s",
        ],
        rows,
        title="Extension: crawl throughput under injected AJAX server faults",
    )
