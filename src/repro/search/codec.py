"""Varint / delta codecs for on-disk posting blocks (§5.2 at scale).

Posting lists are persisted as *blocks* of up to
:data:`~repro.search.segments.BLOCK_SIZE` postings, each block encoded
with the two classic inverted-file tricks:

* **LEB128 unsigned varints** — small integers (deltas, counts, term
  frequencies) take one byte instead of a JSON-rendered decimal string;
* **delta encoding** — both the state ordinals of consecutive postings
  and the occurrence positions inside one posting are strictly
  increasing, so only gaps are stored.

Every decode path validates its input and raises
:class:`~repro.errors.SearchError` on truncation or corruption — a
damaged segment file must surface as a search-layer failure, never as a
raw ``IndexError``/``struct`` traceback from the middle of a query.
"""

from __future__ import annotations

from repro.errors import SearchError

#: A varint longer than this encodes a value above 2^63 — nothing in a
#: segment file is that large, so longer runs mean corruption.
MAX_VARINT_BYTES = 10


def write_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` to ``out`` as an LEB128 unsigned varint."""
    if value < 0:
        raise SearchError(f"cannot varint-encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(data, offset: int) -> tuple[int, int]:
    """Decode one varint from ``data`` at ``offset``.

    Returns ``(value, next_offset)``; raises :class:`SearchError` on a
    truncated buffer or an over-long (corrupt) encoding.
    """
    value = 0
    shift = 0
    size = len(data)
    for count in range(MAX_VARINT_BYTES):
        if offset >= size:
            raise SearchError("truncated varint in segment data")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
    raise SearchError("over-long varint in segment data (corrupt block)")


def write_bytes(out: bytearray, payload: bytes) -> None:
    """Append a length-prefixed byte string."""
    write_uvarint(out, len(payload))
    out.extend(payload)


def read_bytes(data, offset: int) -> tuple[bytes, int]:
    """Decode one length-prefixed byte string."""
    length, offset = read_uvarint(data, offset)
    end = offset + length
    if end > len(data):
        raise SearchError("truncated byte string in segment data")
    return bytes(data[offset:end]), end


def encode_block(ordinals: list[int], positions: list[tuple[int, ...]]) -> bytes:
    """Encode one posting block.

    ``ordinals`` are the segment state ordinals the postings refer to
    (strictly increasing); ``positions[i]`` is posting *i*'s strictly
    increasing occurrence positions.  Layout::

        uvarint count
        count x ( uvarint ordinal-delta   # first absolute
                  uvarint num_positions   # always >= 1
                  uvarint position-delta* # first absolute
                )
    """
    if len(ordinals) != len(positions):
        raise SearchError("ordinal/position arity mismatch in posting block")
    out = bytearray()
    write_uvarint(out, len(ordinals))
    previous = 0
    for index, ordinal in enumerate(ordinals):
        delta = ordinal - previous if index else ordinal
        if index and delta <= 0:
            raise SearchError("posting ordinals must be strictly increasing")
        write_uvarint(out, delta)
        previous = ordinal
        occurrence = positions[index]
        if not occurrence:
            raise SearchError("a posting must have at least one position")
        write_uvarint(out, len(occurrence))
        last = 0
        for position_index, position in enumerate(occurrence):
            gap = position - last if position_index else position
            if position_index and gap <= 0:
                raise SearchError("positions must be strictly increasing")
            write_uvarint(out, gap)
            last = position
    return bytes(out)


def decode_block(data) -> tuple[list[int], list[tuple[int, ...]]]:
    """Decode one posting block back into ``(ordinals, positions)``.

    Inverse of :func:`encode_block`.  Trailing bytes, empty postings and
    truncated varints all raise :class:`SearchError`.
    """
    try:
        count, offset = read_uvarint(data, 0)
        ordinals: list[int] = []
        positions: list[tuple[int, ...]] = []
        ordinal = 0
        for index in range(count):
            delta, offset = read_uvarint(data, offset)
            ordinal = delta if index == 0 else ordinal + delta
            if index and delta == 0:
                raise SearchError("zero ordinal delta (corrupt block)")
            ordinals.append(ordinal)
            num_positions, offset = read_uvarint(data, offset)
            if num_positions == 0:
                raise SearchError("posting with zero positions (corrupt block)")
            occurrence = []
            position = 0
            for position_index in range(num_positions):
                gap, offset = read_uvarint(data, offset)
                if position_index and gap == 0:
                    raise SearchError("zero position delta (corrupt block)")
                position = gap if position_index == 0 else position + gap
                occurrence.append(position)
            positions.append(tuple(occurrence))
    except SearchError:
        raise
    except Exception as error:  # pragma: no cover - defensive belt
        raise SearchError(f"corrupt posting block: {error}") from error
    if offset != len(data):
        raise SearchError(
            f"{len(data) - offset} trailing byte(s) after posting block"
        )
    return ordinals, positions
