"""The in-memory write buffer of the segmented index (LSM memtable).

A :class:`Memtable` accumulates freshly indexed states exactly the way
the historical in-memory :class:`~repro.search.index.InvertedFile` did —
tokenize, group occurrences per term, record per-state statistics — but
it is *bounded*: once :attr:`num_postings` crosses the flush threshold
the owning :class:`~repro.search.segmented.SegmentedIndex` freezes it
into an immutable on-disk segment and starts a fresh one.

Every state carries a monotonically increasing *sequence number*
assigned by the owner, so the global ``states()`` registry preserves
insertion order across any number of segment files (and across
remove/re-add cycles, mirroring dict-insertion semantics).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SearchError
from repro.model import ApplicationModel
from repro.search.postings import Posting, sort_postings
from repro.search.tokenizer import tokenize_with_positions


class Memtable:
    """Mutable accumulation buffer; flushed to a segment when full."""

    def __init__(
        self,
        max_state_index: Optional[int] = None,
        stopwords: Optional[frozenset[str]] = None,
    ) -> None:
        self.max_state_index = max_state_index
        self.stopwords = stopwords
        self._postings: dict[str, list[Posting]] = {}
        #: (uri, state_id) -> (token count, depth, sequence number).
        self._states: dict[tuple[str, str], tuple[int, int, int]] = {}
        #: (uri, state_id) -> terms it contains (for removal).
        self._state_terms: dict[tuple[str, str], tuple[str, ...]] = {}
        self.num_postings = 0

    # -- construction ------------------------------------------------------------

    def add_model(self, model: ApplicationModel, next_seq) -> None:
        """Buffer (a prefix of) one application model.

        ``next_seq`` is a callable handing out the owner's global state
        sequence numbers.
        """
        for state in model.states():
            if self.max_state_index is not None and state.index >= self.max_state_index:
                continue
            self.add_state(model.url, state.state_id, state.text, state.depth, next_seq())

    def add_state(self, uri: str, state_id: str, text: str, depth: int, seq: int) -> None:
        key = (uri, state_id)
        if key in self._states:
            raise SearchError(f"state {key} indexed twice")
        tokens = tokenize_with_positions(text, stopwords=self.stopwords)
        self._states[key] = (len(tokens), depth, seq)
        by_term: dict[str, list[int]] = {}
        for token, position in tokens:
            by_term.setdefault(token, []).append(position)
        for term, positions in by_term.items():
            self._postings.setdefault(term, []).append(
                Posting(uri=uri, state_id=state_id, positions=tuple(positions))
            )
        self._state_terms[key] = tuple(by_term)
        self.num_postings += len(by_term)

    def remove_urls(self, uris) -> int:
        """Drop every buffered state of the given URIs; returns the count."""
        uri_set = set(uris)
        keys = [key for key in self._states if key[0] in uri_set]
        terms_touched: set[str] = set()
        for key in keys:
            del self._states[key]
            terms_touched.update(self._state_terms.pop(key, ()))
        for term in terms_touched:
            remaining = [p for p in self._postings.get(term, []) if p.uri not in uri_set]
            self.num_postings -= len(self._postings.get(term, ())) - len(remaining)
            if remaining:
                self._postings[term] = remaining
            else:
                self._postings.pop(term, None)
        return len(keys)

    # -- views -------------------------------------------------------------------

    @property
    def num_states(self) -> int:
        return len(self._states)

    def __bool__(self) -> bool:
        return bool(self._states)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._states

    def terms(self):
        return self._postings.keys()

    def uris(self) -> set[str]:
        return {uri for uri, _ in self._states}

    def state_stat(self, key: tuple[str, str]) -> Optional[tuple[int, int, int]]:
        """``(length, depth, seq)`` of one buffered state, if present."""
        return self._states.get(key)

    def state_rows(self) -> list[tuple[str, str, int, int, int]]:
        """``(uri, state_id, length, depth, seq)`` for every buffered state."""
        return [
            (uri, state_id, length, depth, seq)
            for (uri, state_id), (length, depth, seq) in self._states.items()
        ]

    def sorted_postings(self) -> list[tuple[str, list[Posting]]]:
        """``(term, canonical-order postings)`` sorted by term — the
        segment writer's input stream."""
        return [
            (term, sort_postings(self._postings[term]))
            for term in sorted(self._postings)
        ]
