"""Ranking coefficients (§5.3.3).

The overall rank of a result is the weighted sum of eq. 5.3:

    R = w1·PageRank(url) + w2·AJAXRank(state) + w3·Σ tf·idf + w4·T(q, s)

* **PageRank** — power iteration over the hyperlink graph built by the
  precrawler; URL-based, identical for all states of a page.
* **AJAXRank** — the within-page analogue [Frey 2007]: power iteration
  over the page's *transition graph*, so states that many events lead to
  (e.g. the first comment page) rank higher.
* **tf/idf** — states as documents (eqs. 5.1/5.2).
* **Term proximity** — rewards query terms appearing close together and
  in order; highest when the state contains the query verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model import ApplicationModel


@dataclass(frozen=True)
class RankingWeights:
    """The weights w1..w4 of eq. 5.3."""

    pagerank: float = 0.2
    ajaxrank: float = 0.2
    tfidf: float = 0.5
    proximity: float = 0.1


def pagerank(
    link_graph: dict[str, list[str]],
    damping: float = 0.85,
    iterations: int = 50,
    tolerance: float = 1e-9,
) -> dict[str, float]:
    """Classic PageRank by power iteration.

    ``link_graph`` maps each node to its outbound neighbours.  Nodes
    that only appear as targets are included with no out-links
    (dangling); their mass is redistributed uniformly.
    """
    nodes: set[str] = set(link_graph)
    for targets in link_graph.values():
        nodes.update(targets)
    if not nodes:
        return {}
    ordered = sorted(nodes)
    count = len(ordered)
    rank = {node: 1.0 / count for node in ordered}
    outgoing = {node: [t for t in link_graph.get(node, []) if t in nodes] for node in ordered}
    for _ in range(iterations):
        dangling_mass = sum(rank[node] for node in ordered if not outgoing[node])
        incoming: dict[str, float] = {node: 0.0 for node in ordered}
        for node in ordered:
            targets = outgoing[node]
            if not targets:
                continue
            share = rank[node] / len(targets)
            for target in targets:
                incoming[target] += share
        new_rank = {}
        base = (1.0 - damping) / count + damping * dangling_mass / count
        for node in ordered:
            new_rank[node] = base + damping * incoming[node]
        delta = sum(abs(new_rank[node] - rank[node]) for node in ordered)
        rank = new_rank
        if delta < tolerance:
            break
    return rank


def ajaxrank(model: ApplicationModel, damping: float = 0.85, iterations: int = 50) -> dict[str, float]:
    """AJAXRank: PageRank over one page's transition graph.

    Returns state_id → rank for every state of ``model``.  Parallel
    edges (several events leading to the same target) count once each,
    so heavily-linked states accumulate more rank.
    """
    graph = {
        state.state_id: [t.to_state for t in model.outgoing(state.state_id)]
        for state in model.states()
    }
    return pagerank(graph, damping=damping, iterations=iterations)


def term_proximity(position_groups: list[tuple[int, ...]]) -> float:
    """Proximity coefficient T(q, s) ∈ (0, 1].

    ``position_groups[i]`` holds the positions of the i-th query term in
    the state.  The coefficient is ``len(terms) / window`` where
    ``window`` is the size of the smallest span containing one position
    of every term *in query order*; a state containing the query
    verbatim scores 1.0, spread-out or reordered occurrences score less.

    Single-term queries score 1.0 by definition.
    """
    if not position_groups or any(not group for group in position_groups):
        return 0.0
    terms = len(position_groups)
    if terms == 1:
        return 1.0
    best_window = _min_ordered_window(position_groups)
    if best_window is None:
        # Terms never appear in query order: fall back to the unordered
        # minimal window, halved (reordered occurrences score less).
        window = _min_unordered_window(position_groups)
        return min(1.0, 0.5 * terms / window)
    return min(1.0, terms / best_window)


def _min_ordered_window(position_groups: list[tuple[int, ...]]) -> int | None:
    """Smallest span covering the terms in order, or None."""
    best: int | None = None
    for start in position_groups[0]:
        current = start
        feasible = True
        for group in position_groups[1:]:
            following = [p for p in group if p > current]
            if not following:
                feasible = False
                break
            current = min(following)
        if feasible:
            window = current - start + 1
            if best is None or window < best:
                best = window
    return best


def _min_unordered_window(position_groups: list[tuple[int, ...]]) -> int:
    """Smallest span covering at least one position of every term."""
    events = sorted(
        (position, index)
        for index, group in enumerate(position_groups)
        for position in group
    )
    need = len(position_groups)
    counts = [0] * need
    have = 0
    best = events[-1][0] - events[0][0] + 1
    left = 0
    for right, (position, index) in enumerate(events):
        if counts[index] == 0:
            have += 1
        counts[index] += 1
        while have == need:
            window = position - events[left][0] + 1
            best = min(best, window)
            left_index = events[left][1]
            counts[left_index] -= 1
            if counts[left_index] == 0:
                have -= 1
            left += 1
    return best
