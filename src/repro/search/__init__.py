"""The AJAX search engine (chapter 5).

State-granular inverted file, boolean retrieval with conjunction merge,
eq. 5.3 ranking (PageRank + AJAXRank + tf/idf + term proximity) and
result aggregation by event replay.  Two interchangeable index
backends: the in-memory :class:`InvertedFile` and the on-disk
:class:`SegmentedIndex` (delta+varint posting blocks, block-max
skipping, LSM compaction) — byte-identical query results.
"""

from repro.search.aggregation import ResultAggregator
from repro.search.engine import SearchEngine, SearchResult
from repro.search.index import InvertedFile
from repro.search.memtable import Memtable
from repro.search.postings import Posting, merge_conjunction, sort_postings
from repro.search.query import Match, evaluate
from repro.search.segmented import SegmentedIndex
from repro.search.segments import (
    BLOCK_SIZE,
    BlockCache,
    MergeStats,
    SegmentReader,
    merge_conjunction_blocks,
    write_segment,
)
from repro.search.ranking import (
    RankingWeights,
    ajaxrank,
    pagerank,
    term_proximity,
)
from repro.search.tokenizer import (
    ENGLISH_STOPWORDS,
    query_terms,
    tokenize,
    tokenize_with_positions,
)

__all__ = [
    "SearchEngine",
    "SearchResult",
    "InvertedFile",
    "SegmentedIndex",
    "Memtable",
    "SegmentReader",
    "BlockCache",
    "MergeStats",
    "BLOCK_SIZE",
    "write_segment",
    "merge_conjunction_blocks",
    "Posting",
    "merge_conjunction",
    "sort_postings",
    "Match",
    "evaluate",
    "RankingWeights",
    "pagerank",
    "ajaxrank",
    "term_proximity",
    "ResultAggregator",
    "tokenize",
    "tokenize_with_positions",
    "query_terms",
    "ENGLISH_STOPWORDS",
]
