"""Query evaluation: simple keywords and conjunctions (§5.3).

Evaluation is boolean: a result is every ``(URI, state)`` containing all
query terms.  Scoring is delegated to the engine; this module only finds
and groups the matching postings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SearchError
from repro.search.index import InvertedFile
from repro.search.postings import Posting, merge_conjunction
from repro.search.tokenizer import query_terms


@dataclass(frozen=True)
class Match:
    """One boolean match: a state containing every query term."""

    uri: str
    state_id: str
    #: Per-term postings (parallel to the query's term list).
    postings: tuple[Posting, ...]


def evaluate(index: InvertedFile, query: str) -> list[Match]:
    """All states containing every term of ``query`` (Figure 5.2).

    Indexes that expose a ``conjunction`` method (the segmented on-disk
    index) intersect their posting lists themselves — block-max skipping
    needs the un-materialized block structure; the in-memory inverted
    file goes through the posting-level galloping merge.  Both return
    identical groups in canonical order.
    """
    terms = query_terms(query, stopwords=index.stopwords)
    if not terms:
        raise SearchError("empty query")
    conjunction = getattr(index, "conjunction", None)
    if conjunction is not None:
        groups = conjunction(terms)
    else:
        lists = [index.postings(term) for term in terms]
        groups = merge_conjunction(lists)
    return [
        Match(uri=group[0].uri, state_id=group[0].state_id, postings=tuple(group))
        for group in groups
    ]
