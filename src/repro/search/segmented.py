"""LSM-style segmented index behind the :class:`InvertedFile` query API.

A :class:`SegmentedIndex` is a *directory*: a ``MANIFEST.json`` naming
the live segment files in chronological order, plus one immutable
``seg-*.seg`` file per flushed memtable (see
:mod:`repro.search.segments` for the file format).  Writes buffer in a
:class:`~repro.search.memtable.Memtable` and freeze into a new segment
once the buffer crosses ``flush_threshold`` postings; a size-tiered
compactor then merges segments of similar size so the segment count
stays logarithmic in index size.

The facade keeps the exact :class:`~repro.search.index.InvertedFile`
query contract — ``postings``/``tf``/``idf``/``state_length``/
``states``/``update_model`` — so :class:`~repro.search.engine.SearchEngine`,
``repro.serve`` and the aggregation tier plug in unchanged, and the
``index_parity`` conformance check holds the results byte-identical.

Two invariants make the multi-segment query path exact:

* **state co-location** — flushes happen only between models, so every
  posting of a given ``(uri, state)`` lives in one segment.  A boolean
  conjunction can therefore run per segment (over compact int ordinals,
  with block skipping) and concatenate: no cross-segment merge state.
* **exact global df** — each segment's term table stores its exact
  document frequency; the global df is their sum, re-derived (not
  approximated) whenever compaction rewrites segments, so ``idf`` is
  bit-identical to the in-memory index (the ch. 6 query-shipping
  contract: per-partition indexes, global-idf correction at merge).
"""

from __future__ import annotations

import json
import math
import os
import threading
from pathlib import Path
from typing import Iterable, Optional

from repro.errors import SearchError
from repro.model import ApplicationModel
from repro.obs import COMPACTION, NULL_RECORDER, SEGMENT_FLUSH
from repro.obs.reqtrace import current_request_trace
from repro.search.memtable import Memtable
from repro.search.postings import Posting, sort_postings
from repro.search.segments import (
    BLOCK_SIZE,
    BlockCache,
    MergeStats,
    SegmentReader,
    merge_conjunction_blocks,
    write_segment,
)

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_VERSION = 1

#: Default memtable flush threshold, in postings.
DEFAULT_FLUSH_POSTINGS = 200_000

#: Segments per size tier before that tier is compacted.
DEFAULT_COMPACT_FANIN = 4


def _tier(num_postings: int) -> int:
    """Size tier of a segment: tiers grow by ~4x postings."""
    return max(0, num_postings.bit_length() - 1) // 2


class SegmentedIndex:
    """Directory-backed inverted file: memtable + immutable segments."""

    def __init__(
        self,
        path: str | Path,
        max_state_index: Optional[int] = None,
        stopwords: Optional[frozenset[str]] = None,
        recorder=NULL_RECORDER,
        metrics=None,
        flush_threshold: int = DEFAULT_FLUSH_POSTINGS,
        block_size: int = BLOCK_SIZE,
        cache_blocks: int = 1024,
        compact_fanin: int = DEFAULT_COMPACT_FANIN,
    ) -> None:
        self.path = Path(path)
        self.recorder = recorder
        self.metrics = metrics
        self.flush_threshold = max(1, flush_threshold)
        self.compact_fanin = max(2, compact_fanin)
        self.cache = BlockCache(capacity=cache_blocks)
        #: Cumulative block-skipping accounting across all conjunctions.
        self.merge_stats = MergeStats()
        self._lock = threading.Lock()
        self._readers: list[SegmentReader] = []
        self._lookup: Optional[dict[tuple[str, str], tuple[SegmentReader, int]]] = None

        self.path.mkdir(parents=True, exist_ok=True)
        manifest_path = self.path / MANIFEST_NAME
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            except ValueError as error:
                raise SearchError(f"corrupt index manifest {manifest_path}") from error
            if manifest.get("version") != MANIFEST_VERSION:
                raise SearchError(
                    f"unsupported index manifest version {manifest.get('version')!r}"
                )
            self.max_state_index = manifest.get("max_state_index")
            words = manifest.get("stopwords")
            self.stopwords = frozenset(words) if words else None
            self.block_size = int(manifest.get("block_size", block_size))
            self._next_seq = int(manifest["next_seq"])
            self._next_segment_id = int(manifest["next_segment_id"])
            for name in manifest["segments"]:
                self._readers.append(SegmentReader(self.path / name, cache=self.cache))
            self.orphans_collected = self._collect_orphans(set(manifest["segments"]))
        else:
            self.max_state_index = max_state_index
            self.stopwords = stopwords
            self.block_size = block_size
            self._next_seq = 0
            self._next_segment_id = 0
            self.orphans_collected = 0
            self._save_manifest()
        self._memtable = Memtable(
            max_state_index=self.max_state_index, stopwords=self.stopwords
        )

    @classmethod
    def open(cls, path: str | Path, **kwargs) -> "SegmentedIndex":
        """Open an existing segmented index directory."""
        path = Path(path)
        if not (path / MANIFEST_NAME).exists():
            raise SearchError(f"{path} is not a segmented index (no {MANIFEST_NAME})")
        return cls(path, **kwargs)

    def close(self) -> None:
        for reader in self._readers:
            reader.close()
        self._readers = []
        self._lookup = None

    # -- persistence -------------------------------------------------------------

    def _collect_orphans(self, live: set[str]) -> int:
        """Delete files a crash stranded outside the manifest.

        The manifest swap (atomic ``os.replace``) is the commit point of
        every mutation; segment files are written *before* it and
        unlinked *after* it.  A crash anywhere in that window therefore
        leaves either a freshly written segment the manifest never
        adopted, a victim segment the manifest already dropped, or a
        half-written ``*.tmp`` — all garbage, never referenced data.
        """
        orphans = 0
        for path in sorted(self.path.glob("seg-*.seg")):
            if path.name not in live:
                path.unlink()
                orphans += 1
        for path in sorted(self.path.glob("*.tmp")):
            path.unlink()
            orphans += 1
        if orphans and self.metrics is not None:
            self.metrics.inc("index.orphans_collected", orphans)
        return orphans

    def _save_manifest(self) -> None:
        manifest = {
            "version": MANIFEST_VERSION,
            "segments": [reader.name for reader in self._readers],
            "next_seq": self._next_seq,
            "next_segment_id": self._next_segment_id,
            "max_state_index": self.max_state_index,
            "stopwords": sorted(self.stopwords) if self.stopwords else None,
            "block_size": self.block_size,
        }
        target = self.path / MANIFEST_NAME
        scratch = target.with_suffix(".json.tmp")
        scratch.write_text(json.dumps(manifest, sort_keys=True), encoding="utf-8")
        os.replace(scratch, target)

    def _segment_path(self) -> Path:
        path = self.path / f"seg-{self._next_segment_id:08d}.seg"
        self._next_segment_id += 1
        return path

    # -- construction ------------------------------------------------------------

    def _take_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def add_model(self, model: ApplicationModel) -> None:
        """Buffer one application model; flush if the memtable is full."""
        # The memtable rejects duplicates it holds itself; states already
        # frozen into segments need an explicit registry check to keep
        # the InvertedFile "indexed twice" contract.
        if self._readers:
            lookup = self._ensure_lookup()
            for state in model.states():
                if self.max_state_index is not None and state.index >= self.max_state_index:
                    continue
                key = (model.url, state.state_id)
                if key in lookup:
                    raise SearchError(f"state {key} indexed twice")
        self._memtable.add_model(model, self._take_seq)
        if self._memtable.num_postings >= self.flush_threshold:
            self.flush()

    def build(self, models: Iterable[ApplicationModel]) -> "SegmentedIndex":
        """Index many models and finalize; returns self for chaining."""
        for model in models:
            self.add_model(model)
        self.finalize()
        return self

    def update_model(self, model: ApplicationModel) -> None:
        """Replace ``model.url``'s states with the model's current ones."""
        self.remove_url(model.url)
        self.add_model(model)
        self.finalize()

    def finalize(self) -> None:
        """Flush any buffered states so the query path sees everything.

        Idempotent and cheap when nothing is buffered — mirrors
        :meth:`InvertedFile.finalize`, which the engine calls eagerly.
        """
        if self._memtable:
            self.flush()

    def flush(self) -> None:
        """Freeze the memtable into a new immutable segment (+ compact)."""
        with self._lock:
            if not self._memtable:
                return
            with self.recorder.span("segment_flush"):
                stats = write_segment(
                    self._segment_path(),
                    self._memtable.state_rows(),
                    self._memtable.sorted_postings(),
                    block_size=self.block_size,
                )
                self._readers.append(SegmentReader(stats.path, cache=self.cache))
                self._memtable = Memtable(
                    max_state_index=self.max_state_index, stopwords=self.stopwords
                )
                self._lookup = None
                self._save_manifest()
                if self.recorder.enabled:
                    self.recorder.emit(
                        SEGMENT_FLUSH,
                        segment=stats.path.name,
                        num_states=stats.num_states,
                        num_postings=stats.num_postings,
                        num_terms=stats.num_terms,
                        num_bytes=stats.num_bytes,
                    )
                if self.metrics is not None:
                    self.metrics.inc("index.segment_flushes")
                    self.metrics.inc("index.flushed_postings", stats.num_postings)
                    self.metrics.set_gauge("index.live_segments", len(self._readers))
        self.maybe_compact()

    # -- compaction --------------------------------------------------------------

    def maybe_compact(self) -> int:
        """Run size-tiered compaction until no tier is over-full.

        Returns the number of merges performed.  A tier holds segments
        whose posting counts fall in the same ~4x size band; once a tier
        accumulates ``compact_fanin`` members they merge into one
        (larger-tier) segment, so lookups touch O(log n) segments.
        """
        merges = 0
        while True:
            tiers: dict[int, list[SegmentReader]] = {}
            for reader in self._readers:
                tiers.setdefault(_tier(reader.num_postings), []).append(reader)
            crowded = [
                members for members in tiers.values() if len(members) >= self.compact_fanin
            ]
            if not crowded:
                return merges
            # Merge the smallest crowded tier first: cheapest, and its
            # output may cascade into the next tier's merge.
            victims = min(crowded, key=lambda members: members[0].num_postings)
            self._merge(victims)
            merges += 1

    def compact_all(self) -> int:
        """Merge every segment into one (full compaction); returns merges."""
        self.finalize()
        if len(self._readers) < 2:
            return 0
        self._merge(list(self._readers))
        return 1

    def _merge(self, victims: list[SegmentReader]) -> None:
        """Merge ``victims`` into one new segment, re-deriving exact df."""
        with self._lock:
            with self.recorder.span("compaction"):
                states: list[tuple[str, str, int, int, int]] = []
                terms: set[str] = set()
                for reader in victims:
                    states.extend(reader.state_rows())
                    terms.update(reader.terms())

                def merged_postings():
                    for term in sorted(terms):
                        postings: list[Posting] = []
                        for reader in victims:
                            postings.extend(reader.materialize(term))
                        # len(postings) is the term's exact merged df —
                        # the segment writer persists it in the term
                        # table, so global idf stays exact after merge.
                        yield term, sort_postings(postings)

                stats = write_segment(
                    self._segment_path(), states, merged_postings(),
                    block_size=self.block_size,
                )
                merged = SegmentReader(stats.path, cache=self.cache)
                position = min(self._readers.index(reader) for reader in victims)
                survivors = [r for r in self._readers if r not in victims]
                survivors.insert(position, merged)
                self._readers = survivors
                self._lookup = None
                self._save_manifest()
                for reader in victims:
                    reader.close()
                    reader.path.unlink(missing_ok=True)
                if self.recorder.enabled:
                    self.recorder.emit(
                        COMPACTION,
                        segment=stats.path.name,
                        merged=len(victims),
                        num_states=stats.num_states,
                        num_postings=stats.num_postings,
                        num_bytes=stats.num_bytes,
                    )
                if self.metrics is not None:
                    self.metrics.inc("index.compactions")
                    self.metrics.inc("index.segments_merged", len(victims))
                    self.metrics.set_gauge("index.live_segments", len(self._readers))

    # -- incremental maintenance -------------------------------------------------

    def remove_url(self, uri: str) -> int:
        """Drop every state of ``uri``; returns the number removed."""
        return self.remove_urls([uri])

    def remove_urls(self, uris: Iterable[str]) -> int:
        """Batched removal: every touched segment is rewritten once.

        Segments are immutable, so removal rewrites each segment that
        holds any of the URIs (minus their states) — no tombstones, so
        df and idf stay exact without a merge-time reconciliation pass.
        """
        uri_set = set(uris)
        removed = self._memtable.remove_urls(uri_set)
        with self._lock:
            touched = [
                reader
                for reader in self._readers
                if any(reader.has_uri(uri) for uri in uri_set)
            ]
            for reader in touched:
                rows = [row for row in reader.state_rows() if row[0] not in uri_set]
                removed += reader.num_states - len(rows)
                position = self._readers.index(reader)
                replacement = None
                if rows:

                    def kept_postings():
                        for term in reader.terms():
                            postings = [
                                posting
                                for posting in reader.materialize(term)
                                if posting.uri not in uri_set
                            ]
                            if postings:
                                yield term, postings

                    stats = write_segment(
                        self._segment_path(), rows, kept_postings(),
                        block_size=self.block_size,
                    )
                    replacement = SegmentReader(stats.path, cache=self.cache)
                self._readers.pop(position)
                if replacement is not None:
                    self._readers.insert(position, replacement)
            if touched:
                self._lookup = None
                self._save_manifest()
                # Unlink victims only after the manifest stops naming
                # them: a crash in between leaves orphans (collected on
                # reopen), never a manifest pointing at missing files.
                for reader in touched:
                    reader.close()
                    reader.path.unlink(missing_ok=True)
                if self.metrics is not None:
                    self.metrics.inc("index.segment_rewrites", len(touched))
                    self.metrics.set_gauge("index.live_segments", len(self._readers))
        return removed

    # -- lookups -----------------------------------------------------------------

    def _ensure_lookup(self) -> dict[tuple[str, str], tuple[SegmentReader, int]]:
        lookup = self._lookup
        if lookup is None:
            lookup = {}
            for reader in self._readers:
                for ordinal in range(reader.num_states):
                    lookup[reader.state_key(ordinal)] = (reader, ordinal)
            self._lookup = lookup
        return lookup

    def postings(self, term: str) -> list[Posting]:
        """The globally sorted posting list of ``term`` (empty if absent)."""
        self.finalize()
        postings: list[Posting] = []
        for reader in self._readers:
            postings.extend(reader.materialize(term))
        return sort_postings(postings)

    def document_frequency(self, term: str) -> int:
        """Exact global df: the sum of per-segment term-table dfs."""
        self.finalize()
        return sum(reader.df(term) for reader in self._readers)

    @property
    def num_states(self) -> int:
        return self._memtable.num_states + sum(
            reader.num_states for reader in self._readers
        )

    @property
    def num_postings(self) -> int:
        return self._memtable.num_postings + sum(
            reader.num_postings for reader in self._readers
        )

    @property
    def num_segments(self) -> int:
        return len(self._readers)

    @property
    def vocabulary_size(self) -> int:
        return len(self.terms())

    def terms(self) -> set[str]:
        self.finalize()
        terms: set[str] = set()
        for reader in self._readers:
            terms.update(reader.terms())
        return terms

    def state_length(self, uri: str, state_id: str) -> int:
        self.finalize()
        entry = self._ensure_lookup().get((uri, state_id))
        if entry is None:
            return 0
        reader, ordinal = entry
        return reader.state_length(ordinal)

    def state_depth(self, uri: str, state_id: str) -> int:
        self.finalize()
        entry = self._ensure_lookup().get((uri, state_id))
        if entry is None:
            return 0
        reader, ordinal = entry
        return reader.state_depth(ordinal)

    def states(self) -> list[tuple[str, str]]:
        """All indexed (uri, state_id) pairs in global insertion order.

        Each state's persisted sequence number reproduces the
        dict-insertion order of :class:`InvertedFile` exactly, including
        remove + re-add moving a URI's states to the end.
        """
        self.finalize()
        keyed: list[tuple[int, tuple[str, str]]] = []
        for reader in self._readers:
            for ordinal in range(reader.num_states):
                keyed.append((reader.state_seq(ordinal), reader.state_key(ordinal)))
        keyed.sort()
        return [key for _, key in keyed]

    # -- statistics (eq. 5.1 / 5.2) ----------------------------------------------

    def tf(self, term: str, uri: str, state_id: str) -> float:
        """Term frequency in one state — decodes at most one block."""
        self.finalize()
        entry = self._ensure_lookup().get((uri, state_id))
        if entry is None:
            return 0.0
        reader, ordinal = entry
        length = reader.state_length(ordinal)
        if length == 0:
            return 0.0
        view = reader.view(term)
        if view is None:
            return 0.0
        count = view.count_at(ordinal)
        if count == 0:
            return 0.0
        return count / length

    def idf(self, term: str) -> float:
        """Inverse document frequency over exact global counts (eq. 5.2)."""
        df = self.document_frequency(term)
        num_states = self.num_states
        if df == 0 or num_states == 0:
            return 0.0
        return math.log(num_states / df)

    # -- query path --------------------------------------------------------------

    def conjunction(self, terms: list[str]) -> list[list[Posting]]:
        """Intersect the terms' posting lists with block-max skipping.

        Returns one group of per-term postings per matching state, in
        global canonical order — exactly what
        :func:`~repro.search.postings.merge_conjunction` yields on the
        materialized lists.  State co-location lets each segment run its
        own ordinal-level merge; results concatenate and sort.
        """
        self.finalize()
        if not terms:
            return []
        stats = MergeStats()
        groups: list[list[Posting]] = []
        for reader in self._readers:
            views = [reader.view(term) for term in terms]
            if any(view is None for view in views):
                continue
            for ordinal, occurrences in merge_conjunction_blocks(views, stats):
                groups.append(
                    [reader.posting(ordinal, positions) for positions in occurrences]
                )
        groups.sort(key=lambda group: group[0].sort_key)
        self.merge_stats.merge(stats)
        if self.metrics is not None:
            self.metrics.inc("index.blocks_decoded", stats.blocks_decoded)
            self.metrics.inc("index.blocks_skipped", stats.blocks_skipped)
            self.metrics.inc("index.postings_decoded", stats.postings_decoded)
        trace = current_request_trace()
        if trace is not None:
            # Per-request read amplification for /debug/trace and the
            # serving tier's live doctor.
            trace.add_index_stats(
                stats.blocks_decoded, stats.blocks_skipped, stats.postings_decoded
            )
        return groups

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        """Inventory of the index directory (for ``index stats``)."""
        self.finalize()
        segments = [
            {
                "name": reader.name,
                "num_states": reader.num_states,
                "num_postings": reader.num_postings,
                "num_terms": reader.num_terms,
                "num_bytes": reader.path.stat().st_size,
            }
            for reader in self._readers
        ]
        return {
            "path": str(self.path),
            "num_segments": len(segments),
            "num_states": self.num_states,
            "num_postings": self.num_postings,
            "vocabulary": self.vocabulary_size,
            "num_bytes": sum(segment["num_bytes"] for segment in segments),
            "block_size": self.block_size,
            "max_state_index": self.max_state_index,
            "segments": segments,
            "cache": {
                "capacity": self.cache.capacity,
                "entries": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
            },
            "merge": self.merge_stats.to_dict(),
        }
