"""Tokenization for indexing and query processing.

Boolean retrieval over comment text (chapter 5) needs nothing fancier
than lowercased alphanumeric tokens, but positions must be kept for the
term-proximity ranking coefficient (§5.3.3 item 4).

An optional stopword list may be applied at indexing time; dropped
stopwords keep their position "slot" so that proximity windows over the
remaining terms stay honest.
"""

from __future__ import annotations

import re
from typing import Container, Optional

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: A small English stopword list (opt-in; the default pipeline indexes
#: everything, like the thesis' boolean-recall-oriented engine).
ENGLISH_STOPWORDS = frozenset(
    """a an and are as at be but by for if in is it of on or the this to
    was were will with""".split()
)


def tokenize(text: str) -> list[str]:
    """Lowercased alphanumeric tokens of ``text``, in order."""
    return _TOKEN_RE.findall(text.lower())


def tokenize_with_positions(
    text: str, stopwords: Optional[Container[str]] = None
) -> list[tuple[str, int]]:
    """Tokens paired with their ordinal position (0-based).

    With ``stopwords``, stopword tokens are dropped but positions are
    *not* renumbered, so term-proximity distances are preserved.
    """
    pairs = [(token, position) for position, token in enumerate(tokenize(text))]
    if stopwords is None:
        return pairs
    return [(token, position) for token, position in pairs if token not in stopwords]


def query_terms(query: str, stopwords: Optional[Container[str]] = None) -> list[str]:
    """Tokenize a user query (same normalization as the index).

    Terms are deduplicated order-preservingly: boolean retrieval is
    set-based, and a repeated term must not count its tf·idf twice
    (``"apple apple"`` has to score exactly like ``"apple"``).
    """
    terms = tokenize(query)
    if stopwords is not None:
        filtered = [term for term in terms if term not in stopwords]
        # An all-stopword query falls back to the raw terms rather than
        # becoming unanswerable.
        terms = filtered or terms
    return list(dict.fromkeys(terms))
