"""The state-granular inverted file (§5.2).

"As opposed to traditional index processing, in our case a result is an
URI *and a state*."  The index maps each keyword to postings of
``(uri, state, positions)``; states play the role documents play in a
traditional inverted file, including for the tf/idf statistics (§5.3.3).

The ``max_state_index`` knob builds an index over only the first *k*
states of every model — this is how the eleven indexes of the
search-quality experiment (§7.7) and the crawl-threshold experiment
(§7.6) are produced.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left
from pathlib import Path
from typing import Iterable, Optional

from repro.errors import SearchError
from repro.model import ApplicationModel
from repro.obs import INDEX_FLUSH, NULL_RECORDER
from repro.search.postings import Posting, sort_postings
from repro.search.tokenizer import tokenize_with_positions


class InvertedFile:
    """Keyword → sorted posting list, plus per-state statistics."""

    def __init__(
        self,
        max_state_index: Optional[int] = None,
        stopwords: Optional[frozenset[str]] = None,
        recorder=NULL_RECORDER,
    ) -> None:
        self.recorder = recorder
        #: Only states with index < max_state_index are indexed
        #: (None = all states).  ``1`` reproduces a traditional index.
        self.max_state_index = max_state_index
        #: Stopwords dropped at indexing time (None = index everything).
        self.stopwords = stopwords
        self._postings: dict[str, list[Posting]] = {}
        #: (uri, state_id) -> number of tokens in the state (tf denominator).
        self._state_lengths: dict[tuple[str, str], int] = {}
        #: (uri, state_id) -> BFS depth of the state (for AJAXRank fallback).
        self._state_depths: dict[tuple[str, str], int] = {}
        #: (uri, state_id) -> terms it contains (for incremental removal).
        self._state_terms: dict[tuple[str, str], tuple[str, ...]] = {}
        self._sorted = True
        # finalize() may be reached lazily from postings() by concurrent
        # query threads; the lock makes the sort-once transition safe.
        self._finalize_lock = threading.Lock()

    # -- construction ------------------------------------------------------------

    def add_model(self, model: ApplicationModel) -> None:
        """Index (a prefix of) one application model."""
        for state in model.states():
            if self.max_state_index is not None and state.index >= self.max_state_index:
                continue
            self._add_state(model.url, state.state_id, state.text, state.depth)

    def _add_state(self, uri: str, state_id: str, text: str, depth: int) -> None:
        key = (uri, state_id)
        if key in self._state_lengths:
            raise SearchError(f"state {key} indexed twice")
        tokens = tokenize_with_positions(text, stopwords=self.stopwords)
        self._state_lengths[key] = len(tokens)
        self._state_depths[key] = depth
        by_term: dict[str, list[int]] = {}
        for token, position in tokens:
            by_term.setdefault(token, []).append(position)
        for term, positions in by_term.items():
            self._postings.setdefault(term, []).append(
                Posting(uri=uri, state_id=state_id, positions=tuple(positions))
            )
        self._state_terms[key] = tuple(by_term)
        self._sorted = False

    # -- incremental maintenance (§7.1.2 cites incremental indexing) --------------

    def remove_url(self, uri: str) -> int:
        """Drop every state of ``uri`` from the index (for re-crawls).

        Returns the number of states removed.
        """
        return self.remove_urls([uri])

    def remove_urls(self, uris: Iterable[str]) -> int:
        """Batched removal: every touched term's list is rebuilt once.

        Removing *k* URIs one at a time rebuilds a shared term's posting
        list *k* times; batching by the URI set filters each list in one
        pass.  Returns the exact number of states removed.
        """
        uri_set = set(uris)
        keys = [key for key in self._state_lengths if key[0] in uri_set]
        terms_touched: set[str] = set()
        for key in keys:
            del self._state_lengths[key]
            self._state_depths.pop(key, None)
            terms_touched.update(self._state_terms.pop(key, ()))
        for term in terms_touched:
            remaining = [p for p in self._postings.get(term, []) if p.uri not in uri_set]
            if remaining:
                self._postings[term] = remaining
            else:
                self._postings.pop(term, None)
        return len(keys)

    def update_model(self, model: ApplicationModel) -> None:
        """Replace ``model.url``'s states with the model's current ones
        (incremental index maintenance after a re-crawl)."""
        self.remove_url(model.url)
        self.add_model(model)
        self.finalize()

    def build(self, models: Iterable[ApplicationModel]) -> "InvertedFile":
        """Index many models and finalize; returns self for chaining."""
        for model in models:
            self.add_model(model)
        self.finalize()
        return self

    def finalize(self) -> None:
        """Sort posting lists into canonical order (idempotent, thread-safe).

        Double-checked locking: the unlocked fast path keeps finalized
        reads free, the locked re-check makes the first ``postings()``
        calls of concurrent query threads safe on a freshly built index.
        """
        if self._sorted:
            return
        with self._finalize_lock:
            if self._sorted:
                return
            with self.recorder.span("index_flush"):
                for term in self._postings:
                    self._postings[term] = sort_postings(self._postings[term])
                self._sorted = True
                if self.recorder.enabled:
                    self.recorder.emit(
                        INDEX_FLUSH,
                        num_states=self.num_states,
                        vocabulary=self.vocabulary_size,
                    )

    # -- lookups ------------------------------------------------------------------

    def postings(self, term: str) -> list[Posting]:
        """The sorted posting list of ``term`` (empty if absent)."""
        self.finalize()
        return list(self._postings.get(term, []))

    def document_frequency(self, term: str) -> int:
        """Number of states containing ``term`` (the idf denominator)."""
        return len(self._postings.get(term, []))

    @property
    def num_states(self) -> int:
        """Total number of indexed states (the idf numerator)."""
        return len(self._state_lengths)

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    def terms(self) -> set[str]:
        """The vocabulary (for differential checks against backends)."""
        return set(self._postings)

    def state_length(self, uri: str, state_id: str) -> int:
        """Token count of one state (tf denominator, eq. 5.1)."""
        return self._state_lengths.get((uri, state_id), 0)

    def state_depth(self, uri: str, state_id: str) -> int:
        return self._state_depths.get((uri, state_id), 0)

    def states(self) -> list[tuple[str, str]]:
        """All indexed (uri, state_id) pairs."""
        return list(self._state_lengths)

    # -- statistics (eq. 5.1 / 5.2) ---------------------------------------------------

    def tf(self, term: str, uri: str, state_id: str) -> float:
        """Term frequency of ``term`` in one state (eq. 5.1).

        Binary search over the finalized sort-key order — scoring one
        state is O(log df), not a scan of the whole posting list.
        """
        length = self.state_length(uri, state_id)
        if length == 0:
            return 0.0
        # finalize() replaces posting lists with sorted copies, so the
        # list must be fetched *after* it runs.
        self.finalize()
        plist = self._postings.get(term)
        if not plist:
            return 0.0
        target = (uri, int(state_id[1:]))
        at = bisect_left(plist, target, key=lambda posting: posting.sort_key)
        if at < len(plist) and plist[at].uri == uri and plist[at].state_id == state_id:
            return plist[at].count / length
        return 0.0

    def idf(self, term: str) -> float:
        """Inverse document frequency with states as documents (eq. 5.2)."""
        df = self.document_frequency(term)
        if df == 0 or self.num_states == 0:
            return 0.0
        return math.log(self.num_states / df)

    # -- serialization ------------------------------------------------------------------

    def to_dict(self) -> dict:
        self.finalize()
        return {
            "max_state_index": self.max_state_index,
            "stopwords": sorted(self.stopwords) if self.stopwords else None,
            "postings": {
                term: [[p.uri, p.state_id, list(p.positions)] for p in plist]
                for term, plist in self._postings.items()
            },
            "state_lengths": [
                [uri, state_id, length]
                for (uri, state_id), length in self._state_lengths.items()
            ],
            "state_depths": [
                [uri, state_id, depth]
                for (uri, state_id), depth in self._state_depths.items()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InvertedFile":
        stopwords = data.get("stopwords")
        index = cls(
            max_state_index=data.get("max_state_index"),
            stopwords=frozenset(stopwords) if stopwords else None,
        )
        for term, plist in data["postings"].items():
            index._postings[term] = [
                Posting(uri=uri, state_id=state_id, positions=tuple(positions))
                for uri, state_id, positions in plist
            ]
        for uri, state_id, length in data["state_lengths"]:
            index._state_lengths[(uri, state_id)] = length
        for uri, state_id, depth in data.get("state_depths", []):
            index._state_depths[(uri, state_id)] = depth
        # Rebuild the per-state term registry (not persisted: derivable).
        terms_by_state: dict[tuple[str, str], list[str]] = {}
        for term, plist in index._postings.items():
            for posting in plist:
                terms_by_state.setdefault((posting.uri, posting.state_id), []).append(term)
        for key, terms in terms_by_state.items():
            index._state_terms[key] = tuple(terms)
        index._sorted = True
        return index

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict()), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "InvertedFile":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
