"""Immutable on-disk index segments with block-max skip pointers.

One segment file holds a self-contained slice of the inverted file: a
sorted URI table, a state table (token length / depth / global insertion
sequence per state), and per term a run of delta+varint posting *blocks*
of up to :data:`BLOCK_SIZE` postings each.  The term table carries, per
block, its byte extent, posting count and **maximum state ordinal** —
the skip entry that lets a conjunction hop over a whole block without
decoding it when the merge target lies beyond it (WAND-style block
skipping layered on PR 3's galloping probe).

File layout (version 1)::

    "AJXSEG01"                         8-byte magic + version
    posting blocks                     back-to-back, per term
    uri table                          sorted, length-prefixed UTF-8
    state table                        sorted by (uri_id, state index)
    term table                         sorted terms -> df + block entries
    meta                               length-prefixed JSON
    footer                             4 x uint64 section offsets + magic

Within a segment a posting is identified by its *state ordinal* — the
state's rank in the (uri, state index) sort order — so posting lists
delta-encode small integers and the conjunction merge compares plain
ints instead of (str, int) tuples.  Readers :func:`mmap.mmap` the file
read-only, so a multi-process serving tier shares one physical copy of
the index through the page cache; per-query work touches only the
blocks the merge actually needs, decoded through a bounded
:class:`BlockCache`.
"""

from __future__ import annotations

import json
import mmap
import struct
import threading
from bisect import bisect_left
from collections import OrderedDict
from pathlib import Path
from typing import Iterable, Optional

from repro.errors import SearchError
from repro.search.codec import (
    decode_block,
    encode_block,
    read_bytes,
    read_uvarint,
    write_bytes,
    write_uvarint,
)
from repro.search.postings import Posting

#: Postings per on-disk block — the skip granularity.
BLOCK_SIZE = 128

MAGIC = b"AJXSEG01"
FOOTER_MAGIC = b"AJXSEGFT"
_FOOTER = struct.Struct("<QQQQ8s")


def _state_sort_key(row: tuple[str, str, int, int, int]) -> tuple[str, int]:
    uri, state_id = row[0], row[1]
    return (uri, int(state_id[1:]))


class SegmentStats:
    """What one segment write produced (for tracing and manifests)."""

    __slots__ = ("path", "num_states", "num_postings", "num_terms", "num_bytes")

    def __init__(self, path: Path, num_states: int, num_postings: int,
                 num_terms: int, num_bytes: int) -> None:
        self.path = path
        self.num_states = num_states
        self.num_postings = num_postings
        self.num_terms = num_terms
        self.num_bytes = num_bytes


def write_segment(
    path: str | Path,
    states: list[tuple[str, str, int, int, int]],
    postings_by_term: Iterable[tuple[str, list[Posting]]],
    block_size: int = BLOCK_SIZE,
) -> SegmentStats:
    """Write one immutable segment file.

    ``states`` rows are ``(uri, state_id, length, depth, seq)``;
    ``postings_by_term`` must yield ``(term, postings)`` pairs sorted by
    term, each posting list in canonical (uri, state index) order.  The
    iterable may stream (compaction feeds it term by term, so a merge
    never materializes more than one term's postings).
    """
    path = Path(path)
    if block_size < 1:
        raise SearchError("segment block size must be >= 1")
    states = sorted(states, key=_state_sort_key)
    uris = sorted({row[0] for row in states})
    uri_ids = {uri: index for index, uri in enumerate(uris)}
    ordinals = {(row[0], row[1]): ordinal for ordinal, row in enumerate(states)}

    num_postings = 0
    num_terms = 0
    term_table = bytearray()
    with open(path, "wb") as handle:
        handle.write(MAGIC)
        offset = len(MAGIC)
        for term, postings in postings_by_term:
            num_terms += 1
            entry = bytearray()
            write_bytes(entry, term.encode("utf-8"))
            write_uvarint(entry, len(postings))
            blocks = [
                postings[start : start + block_size]
                for start in range(0, len(postings), block_size)
            ]
            write_uvarint(entry, len(blocks))
            for block in blocks:
                block_ordinals = []
                block_positions = []
                for posting in block:
                    try:
                        ordinal = ordinals[(posting.uri, posting.state_id)]
                    except KeyError:
                        raise SearchError(
                            f"posting for unknown state "
                            f"({posting.uri!r}, {posting.state_id!r})"
                        ) from None
                    block_ordinals.append(ordinal)
                    block_positions.append(posting.positions)
                payload = encode_block(block_ordinals, block_positions)
                handle.write(payload)
                write_uvarint(entry, offset)
                write_uvarint(entry, len(payload))
                write_uvarint(entry, len(block))
                write_uvarint(entry, block_ordinals[-1])
                offset += len(payload)
            num_postings += len(postings)
            term_table.extend(entry)

        uri_offset = offset
        section = bytearray()
        write_uvarint(section, len(uris))
        for uri in uris:
            write_bytes(section, uri.encode("utf-8"))
        handle.write(section)
        offset += len(section)

        state_offset = offset
        section = bytearray()
        write_uvarint(section, len(states))
        for uri, state_id, length, depth, seq in states:
            index = int(state_id[1:])
            prefix = state_id[: len(state_id) - len(str(index))]
            write_uvarint(section, uri_ids[uri])
            write_uvarint(section, index)
            write_bytes(section, prefix.encode("utf-8"))
            write_uvarint(section, length)
            write_uvarint(section, depth)
            write_uvarint(section, seq)
        handle.write(section)
        offset += len(section)

        term_offset = offset
        header = bytearray()
        write_uvarint(header, num_terms)
        handle.write(header)
        handle.write(term_table)
        offset += len(header) + len(term_table)

        meta_offset = offset
        meta = bytearray()
        write_bytes(
            meta,
            json.dumps(
                {"num_postings": num_postings, "block_size": block_size},
                sort_keys=True,
            ).encode("utf-8"),
        )
        handle.write(meta)
        offset += len(meta)

        handle.write(
            _FOOTER.pack(uri_offset, state_offset, term_offset, meta_offset, FOOTER_MAGIC)
        )
        num_bytes = offset + _FOOTER.size
    return SegmentStats(path, len(states), num_postings, num_terms, num_bytes)


class BlockCache:
    """Bounded LRU over decoded posting blocks, shared across readers.

    Decoding a block costs varint work proportional to its postings; a
    serving tier replays the same hot query blocks constantly, so a
    small cache removes nearly all decode work from the steady state.
    The cache is keyed by ``(segment path, term, block number)`` and is
    lock-protected for the threaded serving tier.
    """

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = max(1, capacity)
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key, loader):
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
        value = loader()
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class _TermMeta:
    """Decoded term-table entry: df plus the per-block skip table."""

    __slots__ = ("df", "offsets", "lengths", "counts", "maxima", "starts")

    def __init__(self, df: int, offsets, lengths, counts, maxima) -> None:
        self.df = df
        self.offsets = offsets
        self.lengths = lengths
        self.counts = counts
        #: Per-block maximum state ordinal — the skip entries.
        self.maxima = maxima
        #: Cumulative posting count before each block (global cursors).
        starts = []
        total = 0
        for count in counts:
            starts.append(total)
            total += count
        self.starts = starts


class SegmentReader:
    """Zero-copy (mmap) reader over one immutable segment file.

    The URI, state and term tables are decoded once at open time (they
    are small); posting blocks stay on disk until a query's merge
    actually needs them, then decode through the shared
    :class:`BlockCache`.
    """

    def __init__(self, path: str | Path, cache: Optional[BlockCache] = None) -> None:
        self.path = Path(path)
        self.cache = cache if cache is not None else BlockCache()
        self._file = open(self.path, "rb")
        try:
            self._map = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as error:
            self._file.close()
            raise SearchError(f"cannot map segment {self.path}: {error}") from error
        try:
            self._parse_tables()
        except SearchError:
            self.close()
            raise

    # -- parsing -----------------------------------------------------------------

    def _parse_tables(self) -> None:
        data = self._map
        if len(data) < len(MAGIC) + _FOOTER.size or data[: len(MAGIC)] != MAGIC:
            raise SearchError(f"{self.path} is not a segment file")
        uri_off, state_off, term_off, meta_off, magic = _FOOTER.unpack(
            data[-_FOOTER.size :]
        )
        if magic != FOOTER_MAGIC:
            raise SearchError(f"{self.path}: bad segment footer")
        if not len(MAGIC) <= uri_off <= state_off <= term_off <= meta_off <= len(data):
            raise SearchError(f"{self.path}: corrupt section offsets")

        count, offset = read_uvarint(data, uri_off)
        uris = []
        for _ in range(count):
            raw, offset = read_bytes(data, offset)
            uris.append(raw.decode("utf-8"))
        self.uris: tuple[str, ...] = tuple(uris)

        count, offset = read_uvarint(data, state_off)
        self._state_uri: list[str] = []
        self._state_id: list[str] = []
        self._state_index: list[int] = []
        self._state_length: list[int] = []
        self._state_depth: list[int] = []
        self._state_seq: list[int] = []
        self._ordinals: dict[tuple[str, str], int] = {}
        for ordinal in range(count):
            uri_id, offset = read_uvarint(data, offset)
            index, offset = read_uvarint(data, offset)
            prefix, offset = read_bytes(data, offset)
            length, offset = read_uvarint(data, offset)
            depth, offset = read_uvarint(data, offset)
            seq, offset = read_uvarint(data, offset)
            if uri_id >= len(self.uris):
                raise SearchError(f"{self.path}: state row references unknown URI")
            uri = self.uris[uri_id]
            state_id = prefix.decode("utf-8") + str(index)
            self._state_uri.append(uri)
            self._state_id.append(state_id)
            self._state_index.append(index)
            self._state_length.append(length)
            self._state_depth.append(depth)
            self._state_seq.append(seq)
            self._ordinals[(uri, state_id)] = ordinal

        count, offset = read_uvarint(data, term_off)
        self._terms: dict[str, _TermMeta] = {}
        for _ in range(count):
            raw, offset = read_bytes(data, offset)
            term = raw.decode("utf-8")
            df, offset = read_uvarint(data, offset)
            num_blocks, offset = read_uvarint(data, offset)
            offsets, lengths, counts, maxima = [], [], [], []
            for _ in range(num_blocks):
                block_offset, offset = read_uvarint(data, offset)
                block_length, offset = read_uvarint(data, offset)
                block_count, offset = read_uvarint(data, offset)
                block_max, offset = read_uvarint(data, offset)
                if block_offset + block_length > uri_off:
                    raise SearchError(
                        f"{self.path}: block of {term!r} overruns the posting region"
                    )
                offsets.append(block_offset)
                lengths.append(block_length)
                counts.append(block_count)
                maxima.append(block_max)
            if sum(counts) != df:
                raise SearchError(f"{self.path}: df of {term!r} disagrees with blocks")
            self._terms[term] = _TermMeta(df, offsets, lengths, counts, maxima)

        raw, _ = read_bytes(data, meta_off)
        try:
            meta = json.loads(raw.decode("utf-8"))
        except ValueError as error:
            raise SearchError(f"{self.path}: corrupt segment meta") from error
        self.num_postings = int(meta["num_postings"])
        self.block_size = int(meta["block_size"])

    # -- table lookups -----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.path.name

    @property
    def num_states(self) -> int:
        return len(self._state_uri)

    @property
    def num_terms(self) -> int:
        return len(self._terms)

    def terms(self):
        """All terms of this segment in sorted order."""
        return self._terms.keys()

    def df(self, term: str) -> int:
        meta = self._terms.get(term)
        return meta.df if meta is not None else 0

    def has_uri(self, uri: str) -> bool:
        return uri in set(self.uris)

    def ordinal(self, uri: str, state_id: str) -> Optional[int]:
        return self._ordinals.get((uri, state_id))

    def state_key(self, ordinal: int) -> tuple[str, str]:
        return (self._state_uri[ordinal], self._state_id[ordinal])

    def sort_key(self, ordinal: int) -> tuple[str, int]:
        return (self._state_uri[ordinal], self._state_index[ordinal])

    def state_length(self, ordinal: int) -> int:
        return self._state_length[ordinal]

    def state_depth(self, ordinal: int) -> int:
        return self._state_depth[ordinal]

    def state_seq(self, ordinal: int) -> int:
        return self._state_seq[ordinal]

    def state_rows(self) -> list[tuple[str, str, int, int, int]]:
        """``(uri, state_id, length, depth, seq)`` in ordinal order."""
        return [
            (
                self._state_uri[ordinal],
                self._state_id[ordinal],
                self._state_length[ordinal],
                self._state_depth[ordinal],
                self._state_seq[ordinal],
            )
            for ordinal in range(self.num_states)
        ]

    # -- posting access ----------------------------------------------------------

    def view(self, term: str) -> Optional["SegmentPostingView"]:
        """A lazily-decoding view over ``term``'s postings, or None."""
        meta = self._terms.get(term)
        if meta is None:
            return None
        return SegmentPostingView(self, term, meta)

    def decode_block_at(self, term: str, block: int) -> tuple[list[int], list[tuple[int, ...]]]:
        """Decode one posting block through the shared LRU cache."""
        meta = self._terms[term]
        key = (str(self.path), term, block)

        def loader():
            start = meta.offsets[block]
            payload = self._map[start : start + meta.lengths[block]]
            ordinals, positions = decode_block(payload)
            if len(ordinals) != meta.counts[block]:
                raise SearchError(
                    f"{self.path}: block {block} of {term!r} decoded "
                    f"{len(ordinals)} postings, skip table says {meta.counts[block]}"
                )
            return ordinals, positions

        return self.cache.get(key, loader)

    def posting(self, ordinal: int, positions: tuple[int, ...]) -> Posting:
        """Materialize one posting from its ordinal + decoded positions."""
        return Posting(
            uri=self._state_uri[ordinal],
            state_id=self._state_id[ordinal],
            positions=positions,
        )

    def materialize(self, term: str) -> list[Posting]:
        """The full posting list of ``term`` (canonical order)."""
        meta = self._terms.get(term)
        if meta is None:
            return []
        postings: list[Posting] = []
        for block in range(len(meta.offsets)):
            ordinals, positions = self.decode_block_at(term, block)
            postings.extend(
                self.posting(ordinal, pos) for ordinal, pos in zip(ordinals, positions)
            )
        return postings

    def close(self) -> None:
        self._map.close()
        self._file.close()


class SegmentPostingView:
    """Block-granular access to one term's postings in one segment."""

    __slots__ = ("reader", "term", "meta")

    def __init__(self, reader: SegmentReader, term: str, meta: _TermMeta) -> None:
        self.reader = reader
        self.term = term
        self.meta = meta

    @property
    def df(self) -> int:
        return self.meta.df

    @property
    def num_blocks(self) -> int:
        return len(self.meta.offsets)

    def block_max(self, block: int) -> int:
        return self.meta.maxima[block]

    def block_start(self, block: int) -> int:
        return self.meta.starts[block]

    def block_count(self, block: int) -> int:
        return self.meta.counts[block]

    def load(self, block: int) -> tuple[list[int], list[tuple[int, ...]]]:
        return self.reader.decode_block_at(self.term, block)

    def count_at(self, ordinal: int) -> int:
        """Occurrences of the term in the state ``ordinal`` (0 if absent).

        Uses the skip table to decode at most one block.
        """
        block = bisect_left(self.meta.maxima, ordinal)
        if block >= self.num_blocks:
            return 0
        ordinals, positions = self.load(block)
        at = bisect_left(ordinals, ordinal)
        if at < len(ordinals) and ordinals[at] == ordinal:
            return len(positions[at])
        return 0


class MergeStats:
    """Decode accounting of one (or many) block-skipping conjunctions."""

    __slots__ = ("blocks_decoded", "blocks_skipped", "postings_decoded", "postings_total")

    def __init__(self) -> None:
        self.blocks_decoded = 0
        self.blocks_skipped = 0
        self.postings_decoded = 0
        self.postings_total = 0

    def merge(self, other: "MergeStats") -> None:
        self.blocks_decoded += other.blocks_decoded
        self.blocks_skipped += other.blocks_skipped
        self.postings_decoded += other.postings_decoded
        self.postings_total += other.postings_total

    def to_dict(self) -> dict:
        return {
            "blocks_decoded": self.blocks_decoded,
            "blocks_skipped": self.blocks_skipped,
            "postings_decoded": self.postings_decoded,
            "postings_total": self.postings_total,
        }


class _BlockCursor:
    """One list's position in the merge: ``(block, offset)`` with lazy decode."""

    __slots__ = ("view", "stats", "block", "offset", "ordinals", "positions", "exhausted")

    def __init__(self, view: SegmentPostingView, stats: MergeStats) -> None:
        self.view = view
        self.stats = stats
        self.block = 0
        self.offset = 0
        self.ordinals: Optional[list[int]] = None
        self.positions: Optional[list[tuple[int, ...]]] = None
        self.exhausted = view.num_blocks == 0

    def _ensure(self) -> None:
        if self.ordinals is None:
            self.ordinals, self.positions = self.view.load(self.block)
            self.stats.blocks_decoded += 1
            self.stats.postings_decoded += len(self.ordinals)

    def key(self) -> int:
        self._ensure()
        return self.ordinals[self.offset]

    def posting(self) -> tuple[int, tuple[int, ...]]:
        self._ensure()
        return self.ordinals[self.offset], self.positions[self.offset]

    def step(self) -> None:
        """Advance by one posting; may cross into the next block."""
        self.offset += 1
        if self.offset >= self.view.block_count(self.block):
            self.block += 1
            self.offset = 0
            self.ordinals = self.positions = None
            if self.block >= self.view.num_blocks:
                self.exhausted = True

    def seek(self, target: int) -> None:
        """Move to the first posting with ordinal >= ``target``.

        Whole blocks whose max ordinal is below the target are hopped
        over *without decoding* — the skip-pointer fast path.  Within
        the final candidate block a binary search lands the cursor.
        """
        while not self.exhausted and self.view.block_max(self.block) < target:
            if self.ordinals is None:
                self.stats.blocks_skipped += 1
            self.block += 1
            self.offset = 0
            self.ordinals = self.positions = None
            if self.block >= self.view.num_blocks:
                self.exhausted = True
        if self.exhausted:
            return
        self._ensure()
        self.offset = bisect_left(self.ordinals, target, self.offset)
        # block_max >= target guarantees a hit inside this block.


def merge_conjunction_blocks(
    views: list[SegmentPostingView],
    stats: Optional[MergeStats] = None,
) -> list[tuple[int, list[tuple[int, ...]]]]:
    """Intersect posting lists at block granularity within one segment.

    Returns ``(ordinal, [positions per input view])`` for every state
    ordinal present in *all* views — exactly the groups
    :func:`~repro.search.postings.merge_conjunction` yields on the
    materialized lists, but whole blocks that cannot contain the current
    merge target are skipped using their max-ordinal entries, without
    decode.  Lists are scanned rarest-first so the most selective term
    drives the jumps (PR 3's discipline, lifted to block level).
    """
    if stats is None:
        stats = MergeStats()
    if not views:
        return []
    stats.postings_total += sum(view.df for view in views)
    cursors = [_BlockCursor(view, stats) for view in views]
    if any(cursor.exhausted for cursor in cursors):
        return []
    n = len(cursors)
    order = sorted(range(n), key=lambda i: views[i].df)
    results: list[tuple[int, list[tuple[int, ...]]]] = []
    while True:
        target = cursors[order[0]].key()
        aligned = True
        for i in order:
            key = cursors[i].key()
            if key != target:
                aligned = False
                if key > target:
                    target = key
        if aligned:
            group = [cursors[i].posting()[1] for i in range(n)]
            results.append((target, group))
            for i in range(n):
                cursors[i].step()
                if cursors[i].exhausted:
                    return results
            continue
        for i in order:
            if cursors[i].key() < target:
                cursors[i].seek(target)
                if cursors[i].exhausted:
                    return results
