"""Result aggregation: reconstructing a result state (§5.4).

A search result is not a URL but a *state*.  To show it, the engine

1. extracts the event path from the initial state to the result state
   out of the page model,
2. loads the page and constructs the initial DOM,
3. replays every annotated event along the path,
4. hands the resulting live page (DOM + JavaScript variables) to the
   caller — "the browser can continue processing the page starting from
   the desired state".
"""

from __future__ import annotations

from repro.browser import Browser, Page
from repro.errors import CrawlerError, SearchError
from repro.model import ApplicationModel, Transition


class ResultAggregator:
    """Replays event paths to materialize result states."""

    def __init__(self, browser: Browser) -> None:
        self.browser = browser

    def reconstruct(self, model: ApplicationModel, state_id: str) -> Page:
        """Materialize ``state_id`` of ``model`` as a live page.

        Raises :class:`~repro.errors.SearchError` when the replay does
        not arrive at the recorded state (the site changed since the
        crawl — a violation of the snapshot-isolation assumption).
        """
        path = model.event_path_to(state_id)
        page = self.browser.load(model.url, run_scripts=True, run_onload=False)
        page.run_onload()
        for transition in path:
            try:
                self._replay(page, transition)
            except CrawlerError as exc:
                # A missing event binding is the same snapshot-isolation
                # violation as a hash mismatch; keep the documented
                # contract that reconstruction failures are SearchErrors.
                raise SearchError(
                    f"replay of {model.url} failed en route to state "
                    f"{state_id}: {exc}"
                ) from exc
        expected = model.get_state(state_id)
        arrived = page.content_hash() == expected.content_hash
        if not arrived:
            # Models built with text-based state identity store text
            # hashes instead of DOM hashes.
            from repro.dom import text_hash

            arrived = text_hash(page.document) == expected.content_hash
        if not arrived:
            raise SearchError(
                f"replay of {model.url} did not reach state {state_id} "
                "(site changed since crawl?)"
            )
        return page

    def _replay(self, page: Page, transition: Transition) -> None:
        import dataclasses

        event = transition.event
        event_types = (event.trigger,)
        for binding in page.events(event_types):
            if (
                binding.event_type == event.trigger
                and binding.handler == event.handler
                and binding.locator.describe() == event.source
            ):
                if event.input_value is not None:
                    binding = dataclasses.replace(binding, input_value=event.input_value)
                page.dispatch(binding)
                return
        raise CrawlerError(
            f"cannot replay transition {event.describe()}: event not present"
        )
