"""Posting lists and their conjunction merge (§5.3.2).

A posting identifies one ``(URI, state)`` pair that contains a keyword —
the enhanced inverted-file entry of Table 5.1 — together with the
occurrence positions used for scoring and proximity.

Posting lists are kept sorted on ``(uri, state index)``, so conjunctions
follow the alignment scheme Figure 5.2 describes: "entries are
compatible if the URLs are compatible, then if the States are
identical."  The merge advances lagging cursors by *galloping*
(exponential probe, then binary search) instead of one entry at a time,
and scans lists rarest-first so the most selective term drives the
jumps — an order-of-magnitude win on skewed multi-term queries while
producing exactly the groups the linear merge would.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from functools import cached_property


@dataclass(frozen=True)
class Posting:
    """One inverted-file entry: keyword occurrence in one state."""

    uri: str
    state_id: str
    positions: tuple[int, ...]

    @property
    def count(self) -> int:
        """Occurrences of the keyword in the state (the Score of Table 5.1)."""
        return len(self.positions)

    @cached_property
    def sort_key(self) -> tuple[str, int]:
        """Canonical (uri, state index) merge key.

        Computed once per posting: ``cached_property`` stores the tuple
        in the instance ``__dict__`` without tripping the frozen
        ``__setattr__``, so the dataclass stays frozen and hashable but
        a merge no longer re-parses ``int(state_id[1:])`` on every
        comparison.
        """
        return (self.uri, int(self.state_id[1:]))


def _gallop_to(keys: list[tuple[str, int]], start: int, target: tuple[str, int]) -> int:
    """First index ``>= start`` whose key is ``>= target``.

    Exponential probe doubles the step until it overshoots, then a
    binary search pins the boundary inside the last probed window —
    O(log d) for a jump of distance d.  Caller guarantees
    ``keys[start] < target``.
    """
    n = len(keys)
    bound = 1
    while start + bound < n and keys[start + bound] < target:
        bound <<= 1
    return bisect_left(keys, target, start + (bound >> 1), min(n, start + bound))


def merge_conjunction(lists: list[list[Posting]]) -> list[list[Posting]]:
    """Intersect posting lists on (URI, state).

    Returns, for every (uri, state) present in *all* input lists, the
    group of per-term postings ``[p_term1, p_term2, ...]`` — callers need
    the individual positions for proximity scoring.

    Implementation: integer sort keys are precomputed per list once, the
    lists are scanned rarest-first, and lagging cursors gallop to the
    current maximum key.  On a full match one group is emitted and every
    cursor advances by one, so duplicate (uri, state) keys pair up by
    multiplicity exactly as the historical linear merge did.
    """
    if not lists:
        return []
    if any(not postings for postings in lists):
        return []
    n = len(lists)
    # Keys once per posting, in flat lists the gallop can bisect.
    keys = [[posting.sort_key for posting in plist] for plist in lists]
    lengths = [len(plist) for plist in lists]
    # Rarest-first: the shortest (most selective) list leads the scan,
    # so the common case is long lists galloping to rare keys.
    order = sorted(range(n), key=lambda i: lengths[i])
    cursors = [0] * n
    results: list[list[Posting]] = []
    while True:
        target = keys[order[0]][cursors[order[0]]]
        aligned = True
        for i in order:
            key = keys[i][cursors[i]]
            if key != target:
                aligned = False
                if key > target:
                    target = key
        if aligned:
            results.append([lists[i][cursors[i]] for i in range(n)])
            for i in range(n):
                cursors[i] += 1
                if cursors[i] >= lengths[i]:
                    return results
            continue
        for i in order:
            if keys[i][cursors[i]] < target:
                cursors[i] = _gallop_to(keys[i], cursors[i], target)
                if cursors[i] >= lengths[i]:
                    return results


def sort_postings(postings: list[Posting]) -> list[Posting]:
    """Sort a posting list into canonical (uri, state) order."""
    return sorted(postings, key=lambda posting: posting.sort_key)
