"""Posting lists and their conjunction merge (§5.3.2).

A posting identifies one ``(URI, state)`` pair that contains a keyword —
the enhanced inverted-file entry of Table 5.1 — together with the
occurrence positions used for scoring and proximity.

Posting lists are kept sorted on ``(uri, state index)``, so conjunctions
are computed as a linear merge, exactly as Figure 5.2 describes:
"entries are compatible if the URLs are compatible, then if the States
are identical."
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Posting:
    """One inverted-file entry: keyword occurrence in one state."""

    uri: str
    state_id: str
    positions: tuple[int, ...]

    @property
    def count(self) -> int:
        """Occurrences of the keyword in the state (the Score of Table 5.1)."""
        return len(self.positions)

    @property
    def sort_key(self) -> tuple[str, int]:
        return (self.uri, int(self.state_id[1:]))


def merge_conjunction(lists: list[list[Posting]]) -> list[list[Posting]]:
    """Intersect posting lists on (URI, state).

    Returns, for every (uri, state) present in *all* input lists, the
    group of per-term postings ``[p_term1, p_term2, ...]`` — callers need
    the individual positions for proximity scoring.
    """
    if not lists:
        return []
    if any(not postings for postings in lists):
        return []
    cursors = [0] * len(lists)
    results: list[list[Posting]] = []
    while all(cursors[i] < len(lists[i]) for i in range(len(lists))):
        keys = [lists[i][cursors[i]].sort_key for i in range(len(lists))]
        largest = max(keys)
        if all(key == largest for key in keys):
            results.append([lists[i][cursors[i]] for i in range(len(lists))])
            for i in range(len(lists)):
                cursors[i] += 1
            continue
        for i in range(len(lists)):
            if keys[i] < largest:
                cursors[i] += 1
    return results


def sort_postings(postings: list[Posting]) -> list[Posting]:
    """Sort a posting list into canonical (uri, state) order."""
    return sorted(postings, key=lambda posting: posting.sort_key)
