"""The AJAX search engine facade (chapter 5).

Combines the inverted file, the hyperlink PageRank, the per-page
AJAXRanks and the ranking formula of eq. 5.3 into one queryable object.
Results are ``(URI, state, rank)`` triples — the 3-tuples of §6.5.1 —
sorted by rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.model import ApplicationModel
from repro.obs import NULL_RECORDER, QUERY_EVAL
from repro.obs.reqtrace import current_request_trace
from repro.search.index import InvertedFile
from repro.search.query import Match, evaluate
from repro.search.ranking import RankingWeights, ajaxrank, term_proximity
from repro.search.tokenizer import query_terms


@dataclass(frozen=True)
class SearchResult:
    """One ranked search result: the (u, s, r) tuple of §6.5.1."""

    uri: str
    state_id: str
    score: float
    #: Score decomposition, for tests and explainability.
    components: dict = field(default_factory=dict, compare=False, hash=False)


class SearchEngine:
    """Index + ranking state for one (shard of a) crawled corpus."""

    def __init__(
        self,
        index: InvertedFile,
        pageranks: Optional[dict[str, float]] = None,
        ajaxranks: Optional[dict[tuple[str, str], float]] = None,
        weights: RankingWeights = RankingWeights(),
        recorder=NULL_RECORDER,
    ) -> None:
        self.index = index
        # Finalize eagerly: the serving hot path must never be the first
        # caller that mutates (sorts) a lazily built index.
        index.finalize()
        self.pageranks = pageranks or {}
        self.ajaxranks = ajaxranks or {}
        self.weights = weights
        self.recorder = recorder

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        models: Iterable[ApplicationModel],
        pageranks: Optional[dict[str, float]] = None,
        weights: RankingWeights = RankingWeights(),
        max_state_index: Optional[int] = None,
        recorder=NULL_RECORDER,
        index=None,
    ) -> "SearchEngine":
        """Index models and precompute every page's AJAXRank.

        ``index`` selects the backend (e.g. a ``SegmentedIndex``); the
        default builds the in-memory :class:`InvertedFile`.
        """
        models = list(models)
        if index is None:
            index = InvertedFile(max_state_index=max_state_index, recorder=recorder)
        index.build(models)
        ajaxranks: dict[tuple[str, str], float] = {}
        for model in models:
            for state_id, rank in ajaxrank(model).items():
                ajaxranks[(model.url, state_id)] = rank
        return cls(
            index,
            pageranks=pageranks,
            ajaxranks=ajaxranks,
            weights=weights,
            recorder=recorder,
        )

    # -- querying ----------------------------------------------------------------

    def search(self, query: str, limit: Optional[int] = None) -> list[SearchResult]:
        """Boolean retrieval + eq. 5.3 ranking, best first."""
        with self.recorder.span("query_eval", query=query):
            matches = evaluate(self.index, query)
            terms = query_terms(query, stopwords=self.index.stopwords)
            idfs = [self.index.idf(term) for term in terms]
            results = [self._score(match, terms, idfs) for match in matches]
            results.sort(key=lambda result: (-result.score, result.uri, result.state_id))
            if self.recorder.enabled:
                self.recorder.emit(
                    QUERY_EVAL,
                    query=query,
                    terms=len(terms),
                    matches=len(matches),
                )
            trace = current_request_trace()
            if trace is not None:
                trace.annotate(terms=len(terms), matches=len(matches))
        return results[:limit] if limit is not None else results

    def result_count(self, query: str) -> int:
        """Number of boolean matches (used by the recall experiments)."""
        return len(evaluate(self.index, query))

    # -- scoring -------------------------------------------------------------------

    def _score(self, match: Match, terms: list[str], idfs: list[float]) -> SearchResult:
        weights = self.weights
        length = self.index.state_length(match.uri, match.state_id)
        tfidf = 0.0
        for posting, idf in zip(match.postings, idfs):
            tf = posting.count / length if length else 0.0
            tfidf += tf * idf
        proximity = term_proximity([posting.positions for posting in match.postings])
        page_rank = self.pageranks.get(match.uri, 0.0)
        ajax_rank = self.ajaxranks.get((match.uri, match.state_id), 0.0)
        score = (
            weights.pagerank * page_rank
            + weights.ajaxrank * ajax_rank
            + weights.tfidf * tfidf
            + weights.proximity * proximity
        )
        return SearchResult(
            uri=match.uri,
            state_id=match.state_id,
            score=score,
            components={
                "pagerank": page_rank,
                "ajaxrank": ajax_rank,
                "tfidf": tfidf,
                "proximity": proximity,
            },
        )
