"""repro — AJAX Crawl: making AJAX applications searchable.

A full reproduction of the ICDE 2009 "AJAX Crawl" system (R. Matter,
ETH Zürich): an event-driven crawler that explores the *states* of an
AJAX application, a hot-node cache that eliminates duplicate server
calls, a state-granular search engine, and the parallel crawl/index/
query-shipping architecture — together with every substrate it needs
(DOM, JavaScript interpreter, simulated network, synthetic YouTube).

Quick taste::

    from repro import AjaxCrawler, SearchEngine
    from repro.sites import SiteConfig, SyntheticYouTube

    site = SyntheticYouTube(SiteConfig(num_videos=20))
    crawler = AjaxCrawler(site)
    result = crawler.crawl(site.all_video_urls())
    engine = SearchEngine.build(result.models)
    for hit in engine.search("wow", limit=5):
        print(hit.uri, hit.state_id, hit.score)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.browser import Browser, Page
from repro.clock import CostModel, SimClock
from repro.crawler import (
    AjaxCrawler,
    CrawlerConfig,
    CrawlResult,
    HotNodeCache,
    TraditionalCrawler,
)
from repro.model import ApplicationModel, State, Transition
from repro.parallel import (
    MPAjaxCrawler,
    Precrawler,
    ShardedSearchEngine,
    URLPartitioner,
)
from repro.search import (
    InvertedFile,
    RankingWeights,
    ResultAggregator,
    SearchEngine,
    SearchResult,
)

__version__ = "0.1.0"

__all__ = [
    "Browser",
    "Page",
    "SimClock",
    "CostModel",
    "AjaxCrawler",
    "TraditionalCrawler",
    "CrawlerConfig",
    "CrawlResult",
    "HotNodeCache",
    "ApplicationModel",
    "State",
    "Transition",
    "Precrawler",
    "URLPartitioner",
    "MPAjaxCrawler",
    "ShardedSearchEngine",
    "InvertedFile",
    "SearchEngine",
    "SearchResult",
    "RankingWeights",
    "ResultAggregator",
]
