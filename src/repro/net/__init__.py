"""Network substrate: simulated servers, gateway, stats and XMLHttpRequest.

Replaces the live HTTP stack of the thesis with a deterministic,
virtual-clock-driven equivalent.  The structure the crawler sees —
page fetches, AJAX round trips, latencies, byte counts — is identical.
"""

from repro.net.http import Request, Response, not_found
from repro.net.server import (
    RoutedServer,
    SimulatedServer,
    StaticServer,
    StatelessnessChecker,
)
from repro.net.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultRule,
    NO_RETRY,
    RetryPolicy,
)
from repro.net.gateway import NETWORK_ACCOUNT, NetworkGateway
from repro.net.latency import (
    ConstantLatency,
    LatencyDistribution,
    LognormalLatency,
    SpikyLatency,
    UniformJitter,
)
from repro.net.stats import NetworkStats
from repro.net.xhr import HotCallPolicy, XMLHttpRequest, make_xhr_constructor

__all__ = [
    "Request",
    "Response",
    "not_found",
    "SimulatedServer",
    "StaticServer",
    "RoutedServer",
    "StatelessnessChecker",
    "NetworkGateway",
    "NETWORK_ACCOUNT",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "NO_RETRY",
    "NetworkStats",
    "HotCallPolicy",
    "XMLHttpRequest",
    "make_xhr_constructor",
    "LatencyDistribution",
    "ConstantLatency",
    "UniformJitter",
    "LognormalLatency",
    "SpikyLatency",
]
