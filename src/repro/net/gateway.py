"""The network gateway: the single choke point between client and server.

Every page load and every XMLHttpRequest goes through a
:class:`NetworkGateway`, which consults the simulated server, charges
latency to the virtual clock and books counters into
:class:`~repro.net.stats.NetworkStats`.  Having one choke point is what
makes the "number of AJAX calls" experiments (Figure 7.5) trustworthy.
"""

from __future__ import annotations

from typing import Optional

from repro.clock import CostModel, SimClock
from repro.errors import NetworkError
from repro.net.http import Request, Response
from repro.net.server import SimulatedServer
from repro.net.stats import NetworkStats

#: Clock account used for all network waits.
NETWORK_ACCOUNT = "network"


class NetworkGateway:
    """Performs simulated requests, charging time and recording stats."""

    def __init__(
        self,
        server: SimulatedServer,
        clock: SimClock,
        cost_model: Optional[CostModel] = None,
        stats: Optional[NetworkStats] = None,
    ) -> None:
        self.server = server
        self.clock = clock
        self.cost_model = cost_model or CostModel()
        self.stats = stats or NetworkStats()

    def fetch_page(self, url: str) -> Response:
        """Fetch a full page (a traditional page load)."""
        return self._request(Request("GET", url), kind="page")

    def ajax_request(self, method: str, url: str, body: str = "") -> Response:
        """Perform one XMLHttpRequest round trip."""
        return self._request(Request(method.upper(), url, body), kind="ajax")

    def _request(self, request: Request, kind: str) -> Response:
        response = self.server.handle(request)
        if response.status >= 500:
            raise NetworkError(f"server error {response.status} for {request.url}")
        latency = self.cost_model.network_latency_ms(kind, response.body_bytes)
        self.clock.advance(latency, account=NETWORK_ACCOUNT)
        self.stats.record(kind, request.url, response.body_bytes, latency)
        return response
