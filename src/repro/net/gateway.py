"""The network gateway: the single choke point between client and server.

Every page load and every XMLHttpRequest goes through a
:class:`NetworkGateway`, which consults the simulated server, charges
latency to the virtual clock and books counters into
:class:`~repro.net.stats.NetworkStats`.  Having one choke point is what
makes the "number of AJAX calls" experiments (Figure 7.5) trustworthy.

The gateway is also where fault tolerance lives.  A failed attempt (5xx
or injected timeout) is *always* charged its latency and booked before
anything else happens — failures cost time and must show up in the
stats.  With a :class:`~repro.net.faults.RetryPolicy` attached, retryable
failures wait an exponential (deterministically jittered) backoff and
try again up to ``max_attempts``; only then does the gateway raise
:class:`~repro.errors.RetriesExhausted`.  With no policy (the default)
behaviour matches the legacy single-attempt gateway, so the happy path
is bit-for-bit unchanged.

The gateway is likewise the network anchor of the trace bus: each
request gets a process-unique ``request_id``, every ``retry`` event
carries it, and every request terminates in exactly one trace event —
``page_fetch``/``xhr_call`` on success, ``request_failed`` on
exhaustion — which is the invariant the trace tests lean on.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.clock import CostModel, SimClock
from repro.errors import RetriesExhausted
from repro.net.faults import RetryPolicy, TIMEOUT_HEADER
from repro.net.http import Request, Response
from repro.net.server import SimulatedServer
from repro.net.stats import NetworkStats
from repro.obs import NULL_RECORDER, PAGE_FETCH, REQUEST_FAILED, RETRY, XHR_CALL

#: Clock account used for all network waits.
NETWORK_ACCOUNT = "network"


class NetworkGateway:
    """Performs simulated requests, charging time and recording stats."""

    def __init__(
        self,
        server: SimulatedServer,
        clock: SimClock,
        cost_model: Optional[CostModel] = None,
        stats: Optional[NetworkStats] = None,
        retry_policy: Optional[RetryPolicy] = None,
        recorder=NULL_RECORDER,
    ) -> None:
        self.server = server
        self.clock = clock
        self.cost_model = cost_model or CostModel()
        self.stats = stats or NetworkStats()
        self.retry_policy = retry_policy
        self.recorder = recorder
        self.recorder.bind_clock(clock)
        self._request_ids = itertools.count(1)

    def fetch_page(self, url: str) -> Response:
        """Fetch a full page (a traditional page load)."""
        return self._request(Request("GET", url), kind="page")

    def ajax_request(self, method: str, url: str, body: str = "") -> Response:
        """Perform one XMLHttpRequest round trip."""
        return self._request(Request(method.upper(), url, body), kind="ajax")

    def _request(self, request: Request, kind: str) -> Response:
        policy = self.retry_policy
        recorder = self.recorder
        request_id = next(self._request_ids) if recorder.enabled else 0
        attempt = 1
        with recorder.span(
            "fetch" if kind == "page" else "xhr", url=request.url
        ) as request_span:
            while True:
                response = self.server.handle(request)
                latency = self._latency_of(kind, response)
                if response.status < 500:
                    self.clock.advance(latency, account=NETWORK_ACCOUNT)
                    self.stats.record(kind, request.url, response.body_bytes, latency)
                    if recorder.enabled:
                        recorder.emit(
                            PAGE_FETCH if kind == "page" else XHR_CALL,
                            request_id=request_id,
                            url=request.url,
                            status=int(response.status),
                            bytes=response.body_bytes,
                            latency_ms=latency,
                            attempts=attempt,
                            **({} if kind == "page" else {"from_cache": False}),
                        )
                    request_span.annotate(attempts=attempt, status=int(response.status))
                    return response
                # Failed attempt: charge and book it *before* deciding what
                # happens next — failures cost time and must be visible.
                self.clock.advance(latency, account=NETWORK_ACCOUNT)
                self.stats.record_failure(kind, request.url, response.body_bytes, latency)
                if policy is not None and policy.should_retry(attempt, response.status):
                    with recorder.span("retry", url=request.url, attempt=attempt):
                        backoff = policy.backoff_ms(attempt, request.url)
                        self.clock.advance(backoff, account=NETWORK_ACCOUNT)
                        self.stats.record_retry(backoff)
                        if recorder.enabled:
                            recorder.emit(
                                RETRY,
                                request_id=request_id,
                                url=request.url,
                                attempt=attempt,
                                status=int(response.status),
                                backoff_ms=backoff,
                            )
                    attempt += 1
                    continue
                self.stats.record_exhausted()
                if recorder.enabled:
                    recorder.emit(
                        REQUEST_FAILED,
                        request_id=request_id,
                        url=request.url,
                        status=int(response.status),
                        attempts=attempt,
                        request_kind=kind,
                    )
                request_span.annotate(attempts=attempt, status=int(response.status))
                raise RetriesExhausted(request.url, response.status, attempt)

    def _latency_of(self, kind: str, response: Response) -> float:
        """The virtual latency of one attempt.

        An injected timeout dictates its own wait; everything else draws
        from the cost model (one draw per attempt, so the happy path
        consumes exactly the RNG sequence it always did).
        """
        timeout = response.headers.get(TIMEOUT_HEADER)
        if timeout is not None:
            return float(timeout)
        return self.cost_model.network_latency_ms(kind, response.body_bytes)
