"""Latency distributions for the simulated network.

The default cost model applies uniform multiplicative jitter; real
networks are heavy-tailed.  These distributions plug into
:class:`~repro.clock.CostModel` (``latency_distribution=``) to study how
latency shape affects crawl times — e.g. a lognormal tail makes the
per-page crawl-time histogram (Figure 7.3) spread right.

Every distribution returns a positive multiplicative factor applied to
the base latency, and is deterministic under its seeded RNG.
"""

from __future__ import annotations

import math
import random


class LatencyDistribution:
    """Interface: sample a positive latency factor."""

    def sample(self) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyDistribution):
    """No variance: every request takes exactly ``factor`` × base."""

    def __init__(self, factor: float = 1.0) -> None:
        if factor <= 0:
            raise ValueError("latency factor must be positive")
        self.factor = factor

    def sample(self) -> float:
        return self.factor


class UniformJitter(LatencyDistribution):
    """Uniform factor in [1 - spread, 1 + spread] (the default shape)."""

    def __init__(self, spread: float = 0.2, seed: int = 0x5EED) -> None:
        if not 0 <= spread < 1:
            raise ValueError("spread must be in [0, 1)")
        self.spread = spread
        self.rng = random.Random(seed)

    def sample(self) -> float:
        return 1.0 + self.rng.uniform(-self.spread, self.spread)


class LognormalLatency(LatencyDistribution):
    """Heavy-tailed factor with median 1 (log-space sigma ``sigma``)."""

    def __init__(self, sigma: float = 0.5, seed: int = 0x5EED) -> None:
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.sigma = sigma
        self.rng = random.Random(seed)

    def sample(self) -> float:
        return math.exp(self.rng.gauss(0.0, self.sigma))


class SpikyLatency(LatencyDistribution):
    """Mostly-fast network with occasional slow spikes.

    With probability ``spike_probability`` a request takes
    ``spike_factor`` × base (a congested moment); otherwise 1×.
    """

    def __init__(
        self,
        spike_probability: float = 0.05,
        spike_factor: float = 8.0,
        seed: int = 0x5EED,
    ) -> None:
        if not 0 <= spike_probability <= 1:
            raise ValueError("spike probability must be in [0, 1]")
        if spike_factor <= 0:
            raise ValueError("spike factor must be positive")
        self.spike_probability = spike_probability
        self.spike_factor = spike_factor
        self.rng = random.Random(seed)

    def sample(self) -> float:
        if self.rng.random() < self.spike_probability:
            return self.spike_factor
        return 1.0
