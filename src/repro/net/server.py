"""The simulated web server.

A :class:`SimulatedServer` is any object that turns a
:class:`~repro.net.http.Request` into a :class:`~repro.net.http.Response`.
The synthetic YouTube site implements this interface; tests use the
small :class:`RoutedServer`/:class:`StaticServer` helpers.

The thesis assumes *statelessness of the server* (section 4.3): the same
request always yields the same response.  :class:`StatelessnessChecker`
wraps any server and asserts that property, which several tests and the
hot-node cache rely on.
"""

from __future__ import annotations

import hashlib
import re
from typing import Callable, Optional

from repro.errors import NetworkError
from repro.net.http import Request, Response, not_found


class SimulatedServer:
    """Interface: subclasses implement :meth:`handle`."""

    def handle(self, request: Request) -> Response:
        """Produce the response for ``request``."""
        raise NotImplementedError


class StaticServer(SimulatedServer):
    """Serves a fixed URL → body mapping.  Handy in tests."""

    def __init__(self, pages: Optional[dict[str, str]] = None) -> None:
        self.pages: dict[str, str] = dict(pages or {})

    def add_page(self, url: str, body: str) -> None:
        self.pages[url] = body

    def handle(self, request: Request) -> Response:
        body = self.pages.get(request.url)
        if body is None:
            return not_found(request.url)
        return Response(body=body)


class RoutedServer(SimulatedServer):
    """Dispatches on regex routes over the request path."""

    def __init__(self) -> None:
        self._routes: list[tuple[re.Pattern[str], Callable[[Request, re.Match[str]], Response]]] = []

    def route(self, pattern: str) -> Callable[
        [Callable[[Request, re.Match[str]], Response]],
        Callable[[Request, re.Match[str]], Response],
    ]:
        """Decorator registering a handler for paths matching ``pattern``."""

        def register(handler: Callable[[Request, re.Match[str]], Response]):
            self._routes.append((re.compile(pattern), handler))
            return handler

        return register

    def handle(self, request: Request) -> Response:
        for pattern, handler in self._routes:
            match = pattern.fullmatch(request.path)
            if match is not None:
                return handler(request, match)
        return not_found(request.url)


class StatelessnessChecker(SimulatedServer):
    """Wraps a server and verifies the snapshot/statelessness assumption.

    Raises :class:`~repro.errors.NetworkError` if the same request ever
    produces two different responses during the wrapper's lifetime.
    """

    def __init__(self, inner: SimulatedServer) -> None:
        self.inner = inner
        self._seen: dict[tuple[str, str, str], str] = {}

    def handle(self, request: Request) -> Response:
        response = self.inner.handle(request)
        key = (request.method, request.url, request.body)
        digest = hashlib.sha256(
            f"{response.status}|{response.body}".encode("utf-8")
        ).hexdigest()
        previous = self._seen.get(key)
        if previous is None:
            self._seen[key] = digest
        elif previous != digest:
            raise NetworkError(
                f"server is not stateless: {request.method} {request.url} "
                "returned different responses"
            )
        return response
