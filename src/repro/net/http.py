"""Request/response types for the simulated network."""

from __future__ import annotations

from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit


@dataclass(frozen=True)
class Request:
    """One HTTP request against the simulated server."""

    method: str
    url: str
    body: str = ""

    @property
    def path(self) -> str:
        """The path component of :attr:`url`."""
        return urlsplit(self.url).path

    @property
    def query(self) -> dict[str, str]:
        """The query string parsed into a dict (last value wins)."""
        return dict(parse_qsl(urlsplit(self.url).query))


@dataclass
class Response:
    """One HTTP response from the simulated server."""

    status: int = 200
    body: str = ""
    content_type: str = "text/html"
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def body_bytes(self) -> int:
        """Size of the body in bytes (drives simulated transfer cost)."""
        return len(self.body.encode("utf-8"))


def not_found(url: str) -> Response:
    """A standard 404 response."""
    return Response(status=404, body=f"<html><body>404: {url}</body></html>")
