"""Counters for network activity.

The evaluation chapter reports network calls, avoided (cached) calls and
network time for whole crawls (Figures 7.5-7.7 and Table 7.1), so the
gateway and the hot-node cache both book into a :class:`NetworkStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NetworkStats:
    """Mutable network counters for one crawl (or one crawler process)."""

    #: Full page fetches performed.
    page_fetches: int = 0
    #: AJAX calls that actually went to the server.
    ajax_calls: int = 0
    #: AJAX calls answered from the hot-node cache (no network).
    cached_hits: int = 0
    #: Total bytes transferred.
    bytes_transferred: int = 0
    #: Virtual milliseconds spent waiting on the network.
    network_time_ms: float = 0.0
    #: Per-URL request counts (diagnostics).
    requests_by_url: dict[str, int] = field(default_factory=dict)

    @property
    def total_requests(self) -> int:
        """All requests that hit the network."""
        return self.page_fetches + self.ajax_calls

    @property
    def attempted_ajax_calls(self) -> int:
        """AJAX call attempts, whether served by network or cache."""
        return self.ajax_calls + self.cached_hits

    def record(self, kind: str, url: str, body_bytes: int, latency_ms: float) -> None:
        """Book one performed network request."""
        if kind == "page":
            self.page_fetches += 1
        elif kind == "ajax":
            self.ajax_calls += 1
        else:
            raise ValueError(f"unknown request kind {kind!r}")
        self.bytes_transferred += body_bytes
        self.network_time_ms += latency_ms
        self.requests_by_url[url] = self.requests_by_url.get(url, 0) + 1

    def record_cache_hit(self) -> None:
        """Book one AJAX call avoided by the hot-node cache."""
        self.cached_hits += 1

    def merge(self, other: "NetworkStats") -> None:
        """Fold another stats object into this one (parallel crawls)."""
        self.page_fetches += other.page_fetches
        self.ajax_calls += other.ajax_calls
        self.cached_hits += other.cached_hits
        self.bytes_transferred += other.bytes_transferred
        self.network_time_ms += other.network_time_ms
        for url, count in other.requests_by_url.items():
            self.requests_by_url[url] = self.requests_by_url.get(url, 0) + count
