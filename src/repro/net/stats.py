"""Counters for network activity, backed by the metrics registry.

The evaluation chapter reports network calls, avoided (cached) calls and
network time for whole crawls (Figures 7.5-7.7 and Table 7.1), so the
gateway and the hot-node cache both book into a :class:`NetworkStats`.

Since the observability layer landed, :class:`NetworkStats` is a *thin
attribute view* over a :class:`~repro.obs.MetricsRegistry`: every
counter lives in the registry under the ``net.*`` namespace (the single
source of truth, shared with the trace bus and the CLI ``--metrics``
dump), and the historical attributes (``page_fetches``, ``retries``,
...) are read-only properties so every existing caller and test keeps
working.  Mutation still goes through the ``record_*`` methods.

Failures are first-class: every attempt that ends in a 5xx/timeout is
booked (``failed_attempts``, with its latency in both ``network_time_ms``
and ``retry_time_ms``), every re-attempt counts as a retry, and a request
that exhausts its attempts counts as a ``failed_request``.  This gives
the bookkeeping invariant the fault-injection tests assert::

    failed_attempts == retries + failed_requests == faults the plan injected

The registry takes a lock per operation, so a stats object may be shared
across threads (the ``run_threaded`` scheduler, shared-browser setups).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry

#: Registry namespace of every network counter.
NET_PREFIX = "net."


class NetworkStats:
    """Network counters for one crawl, viewed over a metrics registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        #: The backing registry; share one to unify accounting, or merge
        #: per-partition registries after a parallel crawl.
        self.registry = registry if registry is not None else MetricsRegistry()

    # -- the historical attribute API (thin properties) -------------------------

    @property
    def page_fetches(self) -> int:
        """Full page fetches performed (successful)."""
        return int(self.registry.counter("net.page_fetches"))

    @property
    def ajax_calls(self) -> int:
        """AJAX calls that actually went to the server (successful)."""
        return int(self.registry.counter("net.ajax_calls"))

    @property
    def cached_hits(self) -> int:
        """AJAX calls answered from the hot-node cache (no network)."""
        return int(self.registry.counter("net.cached_hits"))

    @property
    def bytes_transferred(self) -> int:
        """Total bytes transferred."""
        return int(self.registry.counter("net.bytes_transferred"))

    @property
    def network_time_ms(self) -> float:
        """Virtual milliseconds spent waiting on the network."""
        return self.registry.counter("net.network_time_ms")

    @property
    def failed_attempts(self) -> int:
        """Individual attempts that ended in a server error or timeout."""
        return int(self.registry.counter("net.failed_attempts"))

    @property
    def failed_requests(self) -> int:
        """Requests whose every allowed attempt failed (gateway gave up)."""
        return int(self.registry.counter("net.failed_requests"))

    @property
    def retries(self) -> int:
        """Re-attempts performed after a failed attempt."""
        return int(self.registry.counter("net.retries"))

    @property
    def retry_time_ms(self) -> float:
        """Virtual milliseconds lost to failed attempts and backoff waits."""
        return self.registry.counter("net.retry_time_ms")

    @property
    def requests_by_url(self) -> dict[str, int]:
        """Per-URL request counts, failed attempts included (diagnostics)."""
        return {
            url: int(count)
            for url, count in self.registry.labeled_values("net.requests", "url").items()
        }

    @property
    def total_requests(self) -> int:
        """All successful requests that hit the network."""
        return self.page_fetches + self.ajax_calls

    @property
    def attempted_ajax_calls(self) -> int:
        """AJAX call attempts, whether served by network or cache."""
        return self.ajax_calls + self.cached_hits

    # -- mutation -----------------------------------------------------------------

    def record(self, kind: str, url: str, body_bytes: int, latency_ms: float) -> None:
        """Book one performed network request."""
        if kind not in ("page", "ajax"):
            raise ValueError(f"unknown request kind {kind!r}")
        registry = self.registry
        if kind == "page":
            registry.inc("net.page_fetches")
        else:
            registry.inc("net.ajax_calls")
        registry.inc("net.bytes_transferred", body_bytes)
        registry.inc("net.network_time_ms", latency_ms)
        registry.inc("net.requests", 1, url=url)
        registry.observe("net.latency_ms", latency_ms, kind=kind)

    def record_failure(
        self, kind: str, url: str, body_bytes: int, latency_ms: float
    ) -> None:
        """Book one *failed* attempt: it cost real time and transfer."""
        if kind not in ("page", "ajax"):
            raise ValueError(f"unknown request kind {kind!r}")
        registry = self.registry
        registry.inc("net.failed_attempts")
        registry.inc("net.bytes_transferred", body_bytes)
        registry.inc("net.network_time_ms", latency_ms)
        registry.inc("net.retry_time_ms", latency_ms)
        registry.inc("net.requests", 1, url=url)

    def record_retry(self, backoff_ms: float) -> None:
        """Book one re-attempt and the backoff wait preceding it."""
        registry = self.registry
        registry.inc("net.retries")
        registry.inc("net.network_time_ms", backoff_ms)
        registry.inc("net.retry_time_ms", backoff_ms)

    def record_exhausted(self) -> None:
        """Book one request that failed on every allowed attempt."""
        self.registry.inc("net.failed_requests")

    def record_cache_hit(self) -> None:
        """Book one AJAX call avoided by the hot-node cache."""
        self.registry.inc("net.cached_hits")

    def merge(self, other: "NetworkStats") -> None:
        """Fold another stats object into this one (parallel crawls)."""
        self.registry.merge(other.registry)
