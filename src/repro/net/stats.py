"""Counters for network activity.

The evaluation chapter reports network calls, avoided (cached) calls and
network time for whole crawls (Figures 7.5-7.7 and Table 7.1), so the
gateway and the hot-node cache both book into a :class:`NetworkStats`.

Failures are first-class: every attempt that ends in a 5xx/timeout is
booked (``failed_attempts``, with its latency in both ``network_time_ms``
and ``retry_time_ms``), every re-attempt counts as a retry, and a request
that exhausts its attempts counts as a ``failed_request``.  This gives
the bookkeeping invariant the fault-injection tests assert::

    failed_attempts == retries + failed_requests == faults the plan injected

All mutators take an internal lock so a stats object may be shared
across threads (the ``run_threaded`` scheduler, shared-browser setups).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class NetworkStats:
    """Mutable network counters for one crawl (or one crawler process)."""

    #: Full page fetches performed (successful).
    page_fetches: int = 0
    #: AJAX calls that actually went to the server (successful).
    ajax_calls: int = 0
    #: AJAX calls answered from the hot-node cache (no network).
    cached_hits: int = 0
    #: Total bytes transferred.
    bytes_transferred: int = 0
    #: Virtual milliseconds spent waiting on the network.
    network_time_ms: float = 0.0
    #: Per-URL request counts, failed attempts included (diagnostics).
    requests_by_url: dict[str, int] = field(default_factory=dict)
    #: Individual attempts that ended in a server error or timeout.
    failed_attempts: int = 0
    #: Requests whose every allowed attempt failed (the gateway gave up).
    failed_requests: int = 0
    #: Re-attempts performed after a failed attempt.
    retries: int = 0
    #: Virtual milliseconds lost to failed attempts and backoff waits.
    retry_time_ms: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def total_requests(self) -> int:
        """All successful requests that hit the network."""
        return self.page_fetches + self.ajax_calls

    @property
    def attempted_ajax_calls(self) -> int:
        """AJAX call attempts, whether served by network or cache."""
        return self.ajax_calls + self.cached_hits

    def record(self, kind: str, url: str, body_bytes: int, latency_ms: float) -> None:
        """Book one performed network request."""
        if kind not in ("page", "ajax"):
            raise ValueError(f"unknown request kind {kind!r}")
        with self._lock:
            if kind == "page":
                self.page_fetches += 1
            else:
                self.ajax_calls += 1
            self.bytes_transferred += body_bytes
            self.network_time_ms += latency_ms
            self.requests_by_url[url] = self.requests_by_url.get(url, 0) + 1

    def record_failure(
        self, kind: str, url: str, body_bytes: int, latency_ms: float
    ) -> None:
        """Book one *failed* attempt: it cost real time and transfer."""
        if kind not in ("page", "ajax"):
            raise ValueError(f"unknown request kind {kind!r}")
        with self._lock:
            self.failed_attempts += 1
            self.bytes_transferred += body_bytes
            self.network_time_ms += latency_ms
            self.retry_time_ms += latency_ms
            self.requests_by_url[url] = self.requests_by_url.get(url, 0) + 1

    def record_retry(self, backoff_ms: float) -> None:
        """Book one re-attempt and the backoff wait preceding it."""
        with self._lock:
            self.retries += 1
            self.network_time_ms += backoff_ms
            self.retry_time_ms += backoff_ms

    def record_exhausted(self) -> None:
        """Book one request that failed on every allowed attempt."""
        with self._lock:
            self.failed_requests += 1

    def record_cache_hit(self) -> None:
        """Book one AJAX call avoided by the hot-node cache."""
        with self._lock:
            self.cached_hits += 1

    def merge(self, other: "NetworkStats") -> None:
        """Fold another stats object into this one (parallel crawls)."""
        with self._lock:
            self.page_fetches += other.page_fetches
            self.ajax_calls += other.ajax_calls
            self.cached_hits += other.cached_hits
            self.bytes_transferred += other.bytes_transferred
            self.network_time_ms += other.network_time_ms
            self.failed_attempts += other.failed_attempts
            self.failed_requests += other.failed_requests
            self.retries += other.retries
            self.retry_time_ms += other.retry_time_ms
            for url, count in other.requests_by_url.items():
                self.requests_by_url[url] = self.requests_by_url.get(url, 0) + count
