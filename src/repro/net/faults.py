"""Deterministic fault injection and the retry/backoff policy.

The thesis crawls a live site where servers misbehave; our simulated
substrate was perfectly reliable, so the crawler's robustness was
untestable.  This module closes that gap with two pieces:

* :class:`FaultPlan` — a seedable, fully deterministic schedule of
  server failures.  A plan owns a list of :class:`FaultRule` objects
  (per-URL-pattern 5xx rates, injected timeouts, N-failures-then-recover
  flaky endpoints) and keeps an :attr:`FaultPlan.log` of every injected
  fault, so tests can assert that the gateway observed *exactly* the
  failures the plan produced.  :class:`FaultInjector` wraps any
  :class:`~repro.net.server.SimulatedServer` and consults the plan
  before delegating to the real server.

* :class:`RetryPolicy` — how the :class:`~repro.net.gateway.NetworkGateway`
  reacts to a failed attempt: a retryable-status set, a maximum attempt
  count and exponential backoff with *deterministic* jitter (derived
  from a hash of the URL and attempt number, never from wall-clock
  randomness), so reruns of a crawl are bit-for-bit reproducible.

Injected timeouts are modelled as a 504 response carrying the
:data:`TIMEOUT_HEADER`; the gateway charges the advertised timeout
latency to the virtual clock instead of drawing from the cost model.
"""

from __future__ import annotations

import hashlib
import re
import threading
from dataclasses import dataclass
from typing import Optional

from repro.net.http import Request, Response
from repro.net.server import SimulatedServer

#: Marks a response as an injected fault (diagnostics only).
FAULT_HEADER = "x-injected-fault"
#: On an injected timeout: the virtual milliseconds the client waited.
TIMEOUT_HEADER = "x-injected-timeout-ms"


@dataclass(frozen=True)
class FaultRule:
    """One failure behaviour applied to URLs matching ``pattern``.

    Exactly one trigger is active per rule: ``fail_first`` (deterministic
    N-failures-then-recover) when positive, otherwise the random ``rate``.
    """

    #: Regex searched against the full request URL.
    pattern: str
    #: Probability in [0, 1] that a matching request fails.
    rate: float = 0.0
    #: Status of the injected failure (5xx; ignored for timeouts).
    status: int = 500
    #: ``"error"`` for a plain 5xx, ``"timeout"`` for a hung request.
    kind: str = "error"
    #: Virtual latency charged for an injected timeout.
    timeout_ms: float = 5000.0
    #: Fail the first N matching requests per URL, then recover.
    fail_first: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.kind not in ("error", "timeout"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "error" and self.status < 500:
            raise ValueError(f"injected errors must be 5xx, got {self.status}")

    def matches(self, url: str) -> bool:
        return re.search(self.pattern, url) is not None


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in :attr:`FaultPlan.log`."""

    seq: int
    url: str
    rule_index: int
    kind: str
    status: int


class FaultPlan:
    """A deterministic schedule of failures over a rule list.

    Decisions consume a private seeded RNG in request order, so the same
    plan replayed over the same request sequence injects the same
    faults.  ``decide`` is thread-safe (the threaded scheduler shares
    one plan across partitions), though cross-thread request order — and
    therefore which *specific* requests fail — is then up to the OS; the
    log/counter invariants still hold exactly.
    """

    def __init__(self, rules: list[FaultRule], seed: int = 0) -> None:
        import random

        self.rules = list(rules)
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        #: Per (rule, URL) match counts, for ``fail_first`` rules.
        self._match_counts: dict[tuple[int, str], int] = {}
        #: Every fault injected so far, in injection order.
        self.log: list[FaultEvent] = []

    @property
    def num_injected(self) -> int:
        """Total faults injected so far."""
        return len(self.log)

    def decide(self, request: Request) -> Optional[Response]:
        """The fault response for ``request``, or ``None`` to pass through."""
        with self._lock:
            for index, rule in enumerate(self.rules):
                if not rule.matches(request.url):
                    continue
                if rule.fail_first > 0:
                    key = (index, request.url)
                    count = self._match_counts.get(key, 0)
                    self._match_counts[key] = count + 1
                    inject = count < rule.fail_first
                elif rule.rate > 0.0:
                    inject = self._rng.random() < rule.rate
                else:
                    inject = False
                if inject:
                    return self._inject(request.url, index, rule)
            return None

    def _inject(self, url: str, index: int, rule: FaultRule) -> Response:
        status = 504 if rule.kind == "timeout" else rule.status
        self.log.append(
            FaultEvent(
                seq=len(self.log),
                url=url,
                rule_index=index,
                kind=rule.kind,
                status=status,
            )
        )
        if rule.kind == "timeout":
            return Response(
                status=status,
                body="",
                headers={
                    FAULT_HEADER: "timeout",
                    TIMEOUT_HEADER: str(rule.timeout_ms),
                },
            )
        return Response(
            status=status,
            body=f"<html><body>{status}: injected fault</body></html>",
            headers={FAULT_HEADER: "error"},
        )

    def reset(self) -> None:
        """Rewind the plan to its initial state (same seed, empty log)."""
        import random

        with self._lock:
            self._rng = random.Random(self.seed)
            self._match_counts.clear()
            self.log.clear()


class FaultInjector(SimulatedServer):
    """Wraps a server, substituting failures according to a plan."""

    def __init__(self, inner: SimulatedServer, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan

    def handle(self, request: Request) -> Response:
        fault = self.plan.decide(request)
        if fault is not None:
            return fault
        return self.inner.handle(request)


#: Statuses worth retrying: transient server errors and timeouts.
DEFAULT_RETRYABLE_STATUSES = frozenset({500, 502, 503, 504, 408, 429})


@dataclass(frozen=True)
class RetryPolicy:
    """How the gateway reacts to a failed request attempt."""

    #: Total attempts per request (1 = no retries, the legacy behaviour).
    max_attempts: int = 3
    #: Backoff before the first retry.
    backoff_base_ms: float = 100.0
    #: Growth factor per additional retry (exponential backoff).
    backoff_multiplier: float = 2.0
    #: Jitter half-range as a fraction of the backoff (0.1 = ±10%).
    jitter: float = 0.1
    #: Statuses that justify another attempt.
    retryable_statuses: frozenset[int] = DEFAULT_RETRYABLE_STATUSES

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    def is_retryable(self, status: int) -> bool:
        return status in self.retryable_statuses or status >= 500

    def should_retry(self, attempt: int, status: int) -> bool:
        """Whether to retry after ``attempt`` attempts ended in ``status``."""
        return attempt < self.max_attempts and self.is_retryable(status)

    def backoff_ms(self, attempt: int, url: str = "") -> float:
        """Backoff before attempt ``attempt + 1``.

        The jitter is a pure function of ``(url, attempt)`` — two runs of
        the same crawl wait exactly the same virtual time, yet distinct
        URLs retrying simultaneously do not thunder in lock-step.
        """
        base = self.backoff_base_ms * self.backoff_multiplier ** (attempt - 1)
        if self.jitter <= 0.0:
            return base
        digest = hashlib.sha256(f"{url}#{attempt}".encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
        return base * (1.0 + self.jitter * (2.0 * fraction - 1.0))


#: The legacy behaviour: one attempt, no backoff.
NO_RETRY = RetryPolicy(max_attempts=1)
