"""The ``XMLHttpRequest`` host object.

This is the Python equivalent of the thesis' Java ``XMLHttpRequest``
class (section 4.4.1): page scripts construct it with ``new``, call
``open``/``send`` and read ``responseText``.  ``send`` is the single
point where AJAX traffic happens, and therefore the single point where
the hot-node policy can step in:

* it asks the interpreter's call stack for the topmost *script* function
  and its actual arguments (the ``StackInfo`` of section 4.4.1), and
* consults an attached :class:`HotCallPolicy` — a cache hit serves the
  stored response without touching the network; a miss performs the
  request and stores the result.

The observer wiring of the thesis (AJAXDocument observing
``HTMLDocumentImpl``) collapses here into the ``observer`` callback that
fires for every hot call with its stack signature.

``send`` is also a trace-bus anchor: every cache consultation emits a
``hotnode_cache_hit``/``hotnode_cache_miss`` event, and a cache-served
call emits its own ``xhr_call`` (``from_cache=true``) so that, together
with the gateway's network-side ``xhr_call`` events, every AJAX call a
script makes shows up exactly once in the trace.
"""

from __future__ import annotations

from typing import Any, Callable, Optional
from urllib.parse import urljoin

from repro.errors import JsTypeError, NetworkError, RetriesExhausted
from repro.js.debugger import StackFrame
from repro.js.interpreter import Interpreter
from repro.js.values import HostConstructor, HostObject, NativeFunction, UNDEFINED, to_string
from repro.net.gateway import NetworkGateway
from repro.obs import HOTNODE_CACHE_HIT, HOTNODE_CACHE_MISS, XHR_CALL


class HotCallPolicy:
    """Interface of the hot-node cache as seen by ``XMLHttpRequest``.

    The real implementation lives in :mod:`repro.crawler.hotnode`; a
    ``None`` policy means every AJAX call goes over the network.
    """

    def lookup(self, signature: str) -> Optional[str]:
        """Cached response body for ``signature``, or ``None``."""
        raise NotImplementedError

    def store(self, signature: str, response_body: str) -> None:
        """Record the response of a freshly performed hot call."""
        raise NotImplementedError


#: Callback type: ``observer(signature, url, from_cache)``.
HotCallObserver = Callable[[str, str, bool], None]


class XMLHttpRequest(HostObject):
    """A synchronous-completion XMLHttpRequest bound to one page."""

    host_class = "XMLHttpRequest"

    def __init__(
        self,
        gateway: NetworkGateway,
        base_url: str = "",
        policy: Optional[HotCallPolicy] = None,
        observer: Optional[HotCallObserver] = None,
    ) -> None:
        self.gateway = gateway
        self.base_url = base_url
        self.policy = policy
        self.observer = observer
        self.method = "GET"
        self.url = ""
        self.async_flag = True
        self.ready_state = 0.0
        self.status = 0.0
        self.response_text = ""
        self._opened = False
        #: True when the last send() exhausted its network attempts.
        self.network_failed = False

    # -- host protocol ---------------------------------------------------------

    def js_get(self, name: str) -> Any:
        if name == "open":
            return NativeFunction("open", self._js_open)
        if name == "send":
            return NativeFunction("send", self._js_send)
        if name == "responseText":
            return self.response_text
        if name == "status":
            return self.status
        if name == "readyState":
            return self.ready_state
        return UNDEFINED

    def js_set(self, name: str, value: Any) -> None:
        if name == "onreadystatechange":
            # Accepted but unused: completion is synchronous here.
            return
        raise JsTypeError(f"cannot set XMLHttpRequest property {name!r}")

    def js_keys(self) -> list[str]:
        return ["open", "send", "responseText", "status", "readyState"]

    # -- methods -----------------------------------------------------------------

    def _js_open(self, interp: Interpreter, this: Any, args: list[Any]) -> Any:
        if len(args) < 2:
            raise JsTypeError("XMLHttpRequest.open(method, url[, async])")
        self.method = to_string(args[0])
        self.url = urljoin(self.base_url, to_string(args[1]))
        self.async_flag = bool(args[2]) if len(args) > 2 else True
        self.ready_state = 1.0
        self._opened = True
        return UNDEFINED

    def _js_send(self, interp: Interpreter, this: Any, args: list[Any]) -> Any:
        if not self._opened:
            raise NetworkError("XMLHttpRequest.send() before open()")
        body = "" if not args or args[0] in (None, UNDEFINED) else to_string(args[0])
        signature = self._stack_signature(interp)
        recorder = self.gateway.recorder
        cached = self.policy.lookup(signature) if self.policy is not None else None
        if cached is not None:
            with recorder.span("xhr", url=self.url, from_cache=True):
                self.response_text = cached
                self.status = 200.0
                self.gateway.stats.record_cache_hit()
                if recorder.enabled:
                    recorder.emit(
                        HOTNODE_CACHE_HIT, url=self.url, signature=signature
                    )
                    recorder.emit(
                        XHR_CALL,
                        url=self.url,
                        status=200,
                        bytes=len(cached),
                        from_cache=True,
                    )
                self._notify(signature, from_cache=True)
        else:
            if self.policy is not None and recorder.enabled:
                recorder.emit(
                    HOTNODE_CACHE_MISS, url=self.url, signature=signature
                )
            try:
                response = self.gateway.ajax_request(self.method, self.url, body)
            except RetriesExhausted as failure:
                # Graceful degradation: a dead endpoint must not crash
                # the interpreter.  Scripts see the failure the way real
                # pages do — an error status and an empty body.
                self.response_text = ""
                self.status = float(failure.status)
                self.network_failed = True
                self.ready_state = 4.0
                return UNDEFINED
            self.response_text = response.body
            self.status = float(response.status)
            self.network_failed = False
            if self.policy is not None and response.ok:
                self.policy.store(signature, response.body)
            self._notify(signature, from_cache=False)
        self.ready_state = 4.0
        return UNDEFINED

    def _stack_signature(self, interp: Interpreter) -> str:
        """The hot-node key: topmost script function + actual arguments.

        When ``send`` runs, the stack looks like
        ``... > getUrl(url, async) > send(...)`` — the topmost non-native
        frame is the function whose execution reaches the network, i.e.
        the hot node.  Falls back to the raw request when no script frame
        exists (direct invocation from Python).
        """
        frame: Optional[StackFrame] = interp.call_stack.top_script_frame()
        if frame is None:
            return f"<toplevel>({self.method} {self.url})"
        return frame.signature()

    def _notify(self, signature: str, from_cache: bool) -> None:
        if self.observer is not None:
            self.observer(signature, self.url, from_cache)


def make_xhr_constructor(
    gateway: NetworkGateway,
    base_url: str = "",
    policy: Optional[HotCallPolicy] = None,
    observer: Optional[HotCallObserver] = None,
) -> HostConstructor:
    """Build the ``XMLHttpRequest`` constructor to install as a global."""

    def construct(interp: Interpreter, args: list[Any]) -> XMLHttpRequest:
        return XMLHttpRequest(gateway, base_url=base_url, policy=policy, observer=observer)

    return HostConstructor("XMLHttpRequest", construct)
