"""Focused AJAX crawling — chapter 10 future work / §7.2.2.

"Another option is that of a focused AJAX crawling, which just performs
crawling on content relevant to a more narrow range of users, which is
both useful and restricts the number of AJAX states."

The :class:`FocusedAjaxCrawler` carries an *interest profile* (a bag of
keywords).  It differs from the breadth-first base crawler in two ways:

* **best-first frontier** — the most relevant known state is explored
  next (relevance = profile-term overlap of the state's text);
* **expansion gate** — states below ``min_relevance`` are still indexed
  when reached (they cost nothing extra), but their own events are not
  fired, pruning whole subtrees of irrelevant states.

The per-page state cap of the base configuration still applies, so a
focused crawl spends its state budget on the most relevant content.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from repro.crawler.ajax import AjaxCrawler
from repro.crawler.config import CrawlerConfig, DEFAULT_CONFIG
from repro.clock import CostModel, SimClock
from repro.model import ApplicationModel, State
from repro.net.server import SimulatedServer
from repro.search.tokenizer import tokenize


class InterestProfile:
    """A user's (or group's) interest: weighted keywords."""

    def __init__(self, terms: Iterable[str]) -> None:
        self.terms = frozenset(
            token for term in terms for token in tokenize(term)
        )
        if not self.terms:
            raise ValueError("an interest profile needs at least one term")

    def relevance(self, text: str) -> float:
        """Profile-term hits in ``text``, normalized by profile size."""
        if not text:
            return 0.0
        tokens = set(tokenize(text))
        return len(self.terms & tokens) / len(self.terms)

    def __repr__(self) -> str:
        return f"InterestProfile({sorted(self.terms)})"


class FocusedAjaxCrawler(AjaxCrawler):
    """Best-first AJAX crawler guided by an interest profile."""

    def __init__(
        self,
        server: SimulatedServer,
        profile: InterestProfile,
        config: CrawlerConfig = DEFAULT_CONFIG,
        min_relevance: float = 0.0,
        clock: Optional[SimClock] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        super().__init__(server, config, clock=clock, cost_model=cost_model)
        self.profile = profile
        #: States with relevance strictly greater than this are expanded.
        self.min_relevance = min_relevance

    def _select_next(self, frontier: deque, model: ApplicationModel) -> str:
        best_index = 0
        best_relevance = -1.0
        for index, state_id in enumerate(frontier):
            relevance = self.profile.relevance(model.get_state(state_id).text)
            if relevance > best_relevance:
                best_relevance = relevance
                best_index = index
        frontier.rotate(-best_index)
        return frontier.popleft()

    def _should_expand_state(self, state: State) -> bool:
        # The initial state (depth 0) is always expanded; deeper states
        # must earn their exploration budget.
        if state.depth == 0:
            return True
        return self.profile.relevance(state.text) > self.min_relevance
