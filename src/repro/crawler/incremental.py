"""Incremental (repetitive) crawling — chapter 10 future work.

"Crawling AJAX can also be seen as a repetitive process, which can
reduce the number of crawled events, by ignoring events which did not
cause large changes in previous crawling sessions."

The :class:`IncrementalAjaxCrawler` records, for every fired event, the
pair *(state content hash, event identity)* and whether the DOM changed.
On a later session, events that previously fired **from the very same
state content** without changing anything are skipped outright.  Keying
the history by the state's *content hash* makes the optimization safe
under drift: if a comment page changed since the last session, its hash
changed, nothing matches, and every event is re-fired.

History survives sessions through :meth:`CrawlHistory.save` /
:meth:`CrawlHistory.load` (JSON), mirroring how the thesis persists
application models between phases.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.browser.events import EventBinding
from repro.crawler.ajax import AjaxCrawler
from repro.crawler.config import CrawlerConfig, DEFAULT_CONFIG
from repro.clock import CostModel, SimClock
from repro.model import State
from repro.net.server import SimulatedServer

#: History key: (state content hash, event source, event type, handler).
HistoryKey = tuple[str, str, str, str]


class CrawlHistory:
    """Event outcomes observed in previous crawl sessions."""

    def __init__(self) -> None:
        self._outcomes: dict[HistoryKey, bool] = {}

    @staticmethod
    def key_for(state: State, binding: EventBinding) -> HistoryKey:
        return (
            state.content_hash,
            binding.locator.describe(),
            binding.event_type,
            binding.handler,
        )

    def record(self, state: State, binding: EventBinding, changed: bool) -> None:
        """Remember one fired event's outcome."""
        self._outcomes[self.key_for(state, binding)] = changed

    def known_noop(self, state: State, binding: EventBinding) -> bool:
        """True when this exact event, from this exact state content,
        previously changed nothing."""
        return self._outcomes.get(self.key_for(state, binding)) is False

    @property
    def size(self) -> int:
        return len(self._outcomes)

    @property
    def noop_count(self) -> int:
        return sum(1 for changed in self._outcomes.values() if not changed)

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "outcomes": [
                [list(key), changed] for key, changed in self._outcomes.items()
            ]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CrawlHistory":
        history = cls()
        for key, changed in data.get("outcomes", []):
            history._outcomes[tuple(key)] = bool(changed)
        return history

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict()), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "CrawlHistory":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


class IncrementalAjaxCrawler(AjaxCrawler):
    """An AJAX crawler that learns across sessions.

    Pass the :class:`CrawlHistory` of a previous session (or start
    empty); the crawler skips known no-op events and extends the history
    with everything it fires.  Use :attr:`history` after a crawl to
    persist for the next session.
    """

    def __init__(
        self,
        server: SimulatedServer,
        config: CrawlerConfig = DEFAULT_CONFIG,
        history: Optional[CrawlHistory] = None,
        clock: Optional[SimClock] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        super().__init__(server, config, clock=clock, cost_model=cost_model)
        self.history = history or CrawlHistory()

    def _should_skip_event(self, state: State, binding: EventBinding) -> bool:
        return self.history.known_noop(state, binding)

    def _record_event_outcome(self, state: State, binding: EventBinding, changed: bool) -> None:
        self.history.record(state, binding, changed)
