"""The breadth-first AJAX crawler (Algorithm 3.1.1 / 4.2.1).

The crawler loads a page, runs the body ``onload`` (the AJAX-specific
initialisation), then explores states breadth-first: for every known
state it restores the page to that state, fires each user event, and —
when the DOM changed — resolves the resulting DOM against the model by
content hash.  New states join the frontier (until the state cap), every
observed transition is recorded, and the page is rolled back after each
event (``appModel.rollback(t)``).

The hot-node optimisation of chapter 4 is orthogonal: when enabled, a
:class:`~repro.crawler.hotnode.HotNodeCache` is plugged into the
browser's ``XMLHttpRequest`` so repeated hot calls never reach the
network.  The crawl logic is unchanged — exactly as in the thesis, where
Algorithm 4.2.1 differs from 3.1.1 only in how functions are invoked.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.browser import Browser, JS_ACCOUNT, PARSE_ACCOUNT, Page
from repro.browser.events import EventBinding
from repro.clock import CostModel, SimClock, Stopwatch
from repro.crawler.base import Crawler, PageCrawlResult
from repro.crawler.config import CrawlerConfig, DEFAULT_CONFIG
from repro.crawler.dedup import CollapseOutcome, StateCollapser
from repro.crawler.hotnode import HotNodeCache
from repro.crawler.metrics import PageMetrics
from repro.dom import DomHashes, changed_regions, reference_region_hashes
from repro.dom.simhash import state_features
from repro.errors import BrowserError, NetworkError
from repro.model import ApplicationModel, EventAnnotation, State
from repro.net import NETWORK_ACCOUNT
from repro.net.server import SimulatedServer
from repro.obs import (
    EVENT_FIRED,
    HASH_FULL,
    HASH_INCREMENTAL,
    NULL_RECORDER,
    STATE_CAPPED,
    STATE_COLLAPSED,
    STATE_DISCOVERED,
    STATE_DUPLICATE,
)


class AjaxCrawler(Crawler):
    """Crawls the AJAX states of pages on a simulated server."""

    def __init__(
        self,
        server: SimulatedServer,
        config: CrawlerConfig = DEFAULT_CONFIG,
        clock: Optional[SimClock] = None,
        cost_model: Optional[CostModel] = None,
        recorder=NULL_RECORDER,
    ) -> None:
        self.config = config
        self.recorder = recorder
        self.hot_cache = HotNodeCache(enabled=config.use_hot_node)
        self.browser = Browser(
            server,
            clock=clock,
            cost_model=cost_model,
            javascript_enabled=True,
            hot_policy=self.hot_cache if config.use_hot_node else None,
            max_js_steps=config.max_js_steps,
            retry_policy=config.retry_policy(),
            recorder=recorder,
            incremental_hashing=config.incremental_hashing,
            trace_js_frames=config.trace_js_frames,
        )
        self._unique_counter = 0
        #: Per-origin granularity hints (None = no hint published).
        self._hint_cache: dict[str, Optional[int]] = {}

    @property
    def clock(self) -> SimClock:
        return self.browser.clock

    @property
    def stats(self):
        return self.browser.stats

    # -- crawling one page ----------------------------------------------------------

    def crawl_page(self, url: str) -> PageCrawlResult:
        """Build the application model of one AJAX page."""
        watch = Stopwatch(self.clock)
        counters_before = self._snapshot_counters()
        max_states = self._effective_max_states(url)

        page = self.browser.load(url, run_scripts=True, run_onload=False)
        page.run_onload()  # Algorithm 3.1.1 line 3 (AJAX specific)

        model = ApplicationModel(url)
        metrics = PageMetrics(url=url)
        collapser = self._make_collapser()
        if self.config.incremental_hashing:
            # One combined pass hashes the loaded DOM and warms the
            # subtree caches, so _add_state and snapshot() below are
            # cache reads instead of further full walks.
            initial_hashes = page.hash_state()
            self._trace_hash_pass(url, initial_hashes)
            initial_hash = self._identity_hash(page, initial_hashes)
            initial_regions: Optional[dict[str, str]] = initial_hashes.regions
        else:
            initial_hash = None
            initial_regions = None
        if collapser is not None:
            initial_hash, _ = self._observe_collapse(
                collapser, page, initial_hash, initial_regions
            )
        initial, _ = self._add_state(model, page, depth=0, content_hash=initial_hash)
        if self.recorder.enabled:
            self.recorder.emit(
                STATE_DISCOVERED,
                url=url,
                state_id=initial.state_id,
                depth=0,
                via_event=False,
            )
        snapshots = {initial.state_id: page.snapshot()}

        frontier: deque[str] = deque([initial.state_id])
        visited: set[str] = {initial.state_id}
        #: Events whose dispatch exhausted network retries: firing them
        #: again from another state would burn the same attempts.
        quarantined: set[tuple[str, str]] = set()
        events_invoked = 0

        while frontier:
            state_id = self._select_next(frontier, model)
            state = model.get_state(state_id)
            base_snapshot = snapshots[state_id]
            page.restore(base_snapshot)
            if self.config.incremental_hashing:
                # The restored clone carries the snapshot master's warm
                # caches: this pass is close to a pure cache read.
                base_pass = page.hash_state()
                self._trace_hash_pass(url, base_pass, state_id=state_id)
                base_regions = base_pass.regions
            else:
                base_regions = reference_region_hashes(
                    page.document, stats=page.hash_stats
                )
            for binding in self._enumerate_events(page):
                if events_invoked >= self.config.max_event_invocations:
                    frontier.clear()
                    break
                if self._is_update_event(binding):
                    # §4.3 "No update events": never fire destructive
                    # handlers (Delete buttons, logout links, ...).
                    metrics.update_events_skipped += 1
                    continue
                if self._event_key(binding) in quarantined:
                    metrics.events_quarantined += 1
                    continue
                if self._should_skip_event(state, binding):
                    metrics.events_skipped_from_history += 1
                    continue
                events_invoked += 1
                with self.recorder.span(
                    "fire_event",
                    state_id=state_id,
                    source=binding.locator.describe() if self.recorder.spans else "",
                    trigger=binding.event_type,
                ) as event_span:
                    failed_before = self.stats.failed_requests
                    changed = self._dispatch(page, binding)
                    if self.stats.failed_requests > failed_before:
                        # The event's network call died even after retries:
                        # quarantine it and roll back — a half-updated DOM
                        # must not become a model state.
                        quarantined.add(self._event_key(binding))
                        metrics.events_quarantined += 1
                        if self.recorder.enabled:
                            self.recorder.emit(
                                EVENT_FIRED,
                                url=url,
                                state_id=state_id,
                                source=binding.locator.describe(),
                                trigger=binding.event_type,
                                changed=bool(changed),
                                quarantined=True,
                            )
                        event_span.annotate(quarantined=True)
                        page.restore(base_snapshot)
                        continue
                    if self.recorder.enabled:
                        self.recorder.emit(
                            EVENT_FIRED,
                            url=url,
                            state_id=state_id,
                            source=binding.locator.describe(),
                            trigger=binding.event_type,
                            changed=bool(changed),
                            quarantined=False,
                        )
                    self._record_event_outcome(state, binding, changed)
                    # Hash the DOM and compare against the model (§3.2): the
                    # expensive part of maintaining the application model.
                    self.clock.advance(
                        self.browser.cost_model.state_diff_ms, account="model"
                    )
                    if changed:
                        if self.config.incremental_hashing:
                            # The one combined hash call per event: state
                            # hash and region map from a single pass that
                            # re-hashes only the subtrees the event dirtied.
                            event_pass = page.hash_state()
                            self._trace_hash_pass(url, event_pass, state_id=state_id)
                            content_hash = self._identity_hash(page, event_pass)
                            after_regions = event_pass.regions
                        else:
                            content_hash = None
                            after_regions = reference_region_hashes(
                                page.document, stats=page.hash_stats
                            )
                        collapse: Optional[CollapseOutcome] = None
                        if collapser is not None:
                            # Near-duplicate collapse: resolve against the
                            # canonical twin's hash so volatile regions
                            # never mint new model states.
                            content_hash, collapse = self._observe_collapse(
                                collapser, page, content_hash, after_regions
                            )
                        new_state, created = self._resolve_state(
                            model,
                            page,
                            depth=state.depth + 1,
                            max_states=max_states,
                            content_hash=content_hash,
                        )
                        if new_state is None:
                            # State cap reached (section 4.3 "State explosion"):
                            # the target is discarded, no transition recorded.
                            metrics.states_capped += 1
                            if self.recorder.enabled:
                                self.recorder.emit(
                                    STATE_CAPPED, url=url, max_states=max_states
                                )
                            event_span.annotate(capped=True)
                            page.restore(base_snapshot)
                            continue
                        collapsed = collapse is not None and collapse.merged
                        if self.recorder.enabled:
                            if collapsed:
                                self.recorder.emit(
                                    STATE_COLLAPSED,
                                    url=url,
                                    state_id=new_state.state_id,
                                    depth=state.depth + 1,
                                    distance=collapse.distance,
                                    candidates=collapse.candidates,
                                )
                            else:
                                self.recorder.emit(
                                    STATE_DISCOVERED if created else STATE_DUPLICATE,
                                    url=url,
                                    state_id=new_state.state_id,
                                    depth=state.depth + 1,
                                    via_event=True,
                                )
                        if collapsed:
                            metrics.states_collapsed += 1
                        if not created:
                            metrics.duplicates_detected += 1
                        model.add_transition(
                            state,
                            new_state,
                            EventAnnotation(
                                source=binding.locator.describe(),
                                trigger=binding.event_type,
                                handler=binding.handler,
                                input_value=binding.input_value,
                            ),
                            # ``modif*`` of Algorithm 3.1.1: the region ids
                            # whose subtree the event actually changed.
                            modified=changed_regions(base_regions, after_regions),
                        )
                        if (
                            created
                            and new_state.state_id not in visited
                            and self._should_expand_state(new_state)
                        ):
                            visited.add(new_state.state_id)
                            frontier.append(new_state.state_id)
                            snapshots[new_state.state_id] = page.snapshot()
                    # Rollback: continue from the state under exploration.
                    page.restore(base_snapshot)

        model.compute_depths()
        if collapser is not None:
            self._finish_collapse(model, metrics, collapser)
        self._fill_metrics(metrics, model, events_invoked, watch, counters_before)
        self._fill_hash_metrics(metrics, page)
        return PageCrawlResult(model=model, metrics=metrics)

    # -- internals ---------------------------------------------------------------------

    def _dispatch(self, page: Page, binding: EventBinding) -> bool:
        try:
            return page.dispatch(binding)
        except BrowserError:
            # The event's source vanished (stale locator); skip it.
            return False
        except NetworkError:
            # A network failure escaped the XHR layer (e.g. a handler
            # re-raising): treat it like an exhausted request so the
            # quarantine logic sees it, never crash the page crawl.
            self.stats.record_exhausted()
            return False

    def _event_key(self, binding: EventBinding) -> tuple[str, str]:
        """Identity of an event across states, for quarantining."""
        return (binding.locator.describe(), binding.event_type)

    def _state_hash(self, page: Page) -> str:
        if self.config.state_identity == "text":
            from repro.dom import text_hash

            return text_hash(page.document)
        return page.content_hash()

    def _identity_hash(self, page: Page, hashes: DomHashes) -> Optional[str]:
        """The state-identity hash a combined pass already yields.

        Returns ``None`` for the "text" identity mode, whose looser
        hash is not derivable from the canonical DOM digest — callers
        fall back to :meth:`_state_hash`.
        """
        if self.config.state_identity == "text":
            return None
        return hashes.state

    def _make_collapser(self) -> Optional[StateCollapser]:
        """One fresh collapser per page crawl (None = layer disabled)."""
        if self.config.near_dup_threshold is None:
            return None
        if not self.config.deduplicate_states:
            raise ValueError(
                "near_dup_threshold requires hash-based deduplication "
                "(deduplicate_states=True): collapse merges by content hash"
            )
        return StateCollapser(
            self.config.near_dup_threshold, self.config.near_dup_bands
        )

    def _observe_collapse(
        self,
        collapser: StateCollapser,
        page: Page,
        content_hash: Optional[str],
        regions: Optional[dict[str, str]],
    ) -> tuple[str, CollapseOutcome]:
        """Classify the current DOM against the collapser.

        Returns the hash to resolve against the model: the observation's
        own content hash for a new canonical (or exact re-observation),
        the canonical twin's hash when this DOM merged into one.
        """
        if content_hash is None:
            content_hash = self._state_hash(page)
        if regions is None:
            regions = reference_region_hashes(page.document, stats=page.hash_stats)
        outcome = collapser.observe(
            content_hash, state_features(page.document), regions
        )
        return outcome.canonical_hash, outcome

    def _finish_collapse(
        self,
        model: ApplicationModel,
        metrics: PageMetrics,
        collapser: StateCollapser,
    ) -> None:
        """Book collapser accounting and annotate canonical states."""
        metrics.dedup_states_hashed = collapser.states_hashed
        metrics.dedup_lsh_candidates = collapser.lsh_candidates
        metrics.dedup_hamming_checks = collapser.hamming_checks
        for canonical_hash in collapser.canonical_hashes():
            state = model.resolve_hash(canonical_hash)
            if state is None:
                # The canonical itself was rejected by the state cap.
                continue
            variants = collapser.variants_of(canonical_hash)
            if variants > 1:
                state.annotations["near_dup_variants"] = str(variants)
                volatile = collapser.volatile_regions_of(canonical_hash)
                if volatile:
                    state.annotations["volatile_regions"] = ",".join(volatile)

    def _trace_hash_pass(
        self, url: str, hashes: DomHashes, state_id: Optional[str] = None
    ) -> None:
        """Emit one ``hash_full``/``hash_incremental`` trace event.

        Gated on ``config.trace_hashing`` (off by default) so traces
        recorded before this event kind existed stay byte-identical.
        """
        if not (self.config.trace_hashing and self.recorder.enabled):
            return
        self.recorder.emit(
            HASH_INCREMENTAL if hashes.incremental else HASH_FULL,
            url=url,
            state_id=state_id,
            nodes_hashed=hashes.nodes_hashed,
            nodes_skipped=hashes.nodes_skipped,
            bytes_hashed=hashes.bytes_hashed,
            regions=len(hashes.regions),
        )

    def _add_state(
        self,
        model: ApplicationModel,
        page: Page,
        depth: int,
        content_hash: Optional[str] = None,
    ) -> tuple[State, bool]:
        if content_hash is None:
            content_hash = self._state_hash(page)
        if not self.config.deduplicate_states:
            # Ablation mode: force a unique identity per DOM observation.
            self._unique_counter += 1
            content_hash = f"{content_hash}:{self._unique_counter}"
        html = None
        if self.config.store_html:
            from repro.dom import serialize

            html = serialize(page.document)
        return model.add_state(content_hash, page.text, html=html, depth=depth)

    def _resolve_state(
        self,
        model: ApplicationModel,
        page: Page,
        depth: int,
        max_states: int,
        content_hash: Optional[str] = None,
    ) -> tuple[Optional[State], bool]:
        """Resolve the page's current DOM against the model, respecting
        the per-page state cap: a genuinely new state beyond the cap is
        not admitted and ``(None, False)`` is returned.

        ``content_hash`` carries the digest a combined Merkle pass
        already produced; when ``None`` (legacy mode, text identity)
        the hash is computed here — and again in :meth:`_add_state`,
        faithfully reproducing the seed's double full walk so baseline
        benchmarks measure what the seed actually did.
        """
        resolved = content_hash if content_hash is not None else self._state_hash(page)
        if (
            self.config.deduplicate_states
            and not model.contains_hash(resolved)
            and model.num_states >= max_states
        ):
            return None, False
        if not self.config.deduplicate_states and model.num_states >= max_states:
            return None, False
        return self._add_state(model, page, depth, content_hash=content_hash)

    def _enumerate_events(self, page: Page) -> list[EventBinding]:
        """Hook for subclasses: which events to fire in the current state.

        The base crawler uses the configured DOM event attributes; the
        form-filling crawler extends the list with value-carrying
        bindings for text inputs.
        """
        return page.events(self.config.event_types)

    def _select_next(self, frontier: deque, model: ApplicationModel) -> str:
        """Hook for subclasses: pick the next frontier state to explore.

        The base crawler is breadth-first (FIFO); the focused crawler
        overrides this with best-first selection.
        """
        return frontier.popleft()

    def _should_expand_state(self, state: State) -> bool:
        """Hook for subclasses: decide whether a newly discovered state's
        own events should be explored.  The base crawler expands all."""
        return True

    def _should_skip_event(self, state: State, binding: EventBinding) -> bool:
        """Hook for subclasses: skip this event without firing it.

        The base crawler never skips; the incremental recrawler
        (:mod:`repro.crawler.incremental`) skips events a previous
        session proved to be no-ops.
        """
        return False

    def _record_event_outcome(self, state: State, binding: EventBinding, changed: bool) -> None:
        """Hook for subclasses: observe one fired event's outcome."""

    def _is_update_event(self, binding: EventBinding) -> bool:
        handler = binding.handler.lower()
        return any(pattern in handler for pattern in self.config.update_event_patterns)

    def _effective_max_states(self, url: str) -> int:
        """The per-page state cap, lowered by the site's granularity hint
        (``/ajax-robots.json``) when one is published and honoured."""
        if not self.config.respect_granularity_hints:
            return self.config.max_states
        hint = self._granularity_hint_for(url)
        if hint is None:
            return self.config.max_states
        return min(self.config.max_states, max(1, hint))

    def _granularity_hint_for(self, url: str) -> Optional[int]:
        from urllib.parse import urlsplit, urlunsplit

        parts = urlsplit(url)
        origin = urlunsplit((parts.scheme, parts.netloc, "", "", ""))
        if origin in self._hint_cache:
            return self._hint_cache[origin]
        # Out-of-band metadata fetch: goes straight to the server so it
        # does not pollute the AJAX-call counters of the experiments.
        from repro.net.http import Request

        hint: Optional[int] = None
        response = self.browser.gateway.server.handle(
            Request("GET", origin + "/ajax-robots.json")
        )
        if response.ok:
            import json

            try:
                payload = json.loads(response.body)
                value = payload.get("max_states")
                # bool is an int subclass: {"max_states": true} must not
                # silently cap the page at 1 state.
                if (
                    isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    and value > 0
                ):
                    hint = int(value)
            except (ValueError, AttributeError):
                hint = None
        self._hint_cache[origin] = hint
        return hint

    def _snapshot_counters(self) -> dict[str, float]:
        stats = self.browser.stats
        clock = self.clock
        return {
            "ajax_calls": stats.ajax_calls,
            "cached_hits": stats.cached_hits,
            "network_ms": clock.spent_on(NETWORK_ACCOUNT),
            "js_ms": clock.spent_on(JS_ACCOUNT),
            "parse_ms": clock.spent_on(PARSE_ACCOUNT),
        }

    def _fill_metrics(
        self,
        metrics: PageMetrics,
        model: ApplicationModel,
        events_invoked: int,
        watch: Stopwatch,
        before: dict[str, float],
    ) -> None:
        # Charge the model-maintenance cost for each state kept.
        maintenance = model.num_states * self.browser.cost_model.model_insert_ms
        self.clock.advance(maintenance, account="model")
        stats = self.browser.stats
        clock = self.clock
        metrics.crawl_time_ms = watch.elapsed_ms
        metrics.network_time_ms = clock.spent_on(NETWORK_ACCOUNT) - before["network_ms"]
        metrics.js_time_ms = clock.spent_on(JS_ACCOUNT) - before["js_ms"]
        metrics.parse_time_ms = clock.spent_on(PARSE_ACCOUNT) - before["parse_ms"]
        metrics.states = model.num_states
        metrics.events_invoked = events_invoked
        metrics.ajax_calls = int(stats.ajax_calls - before["ajax_calls"])
        metrics.cached_hits = int(stats.cached_hits - before["cached_hits"])

    def _fill_hash_metrics(self, metrics: PageMetrics, page: Page) -> None:
        """Book the page's hashing work (both modes share HashStats)."""
        hs = page.hash_stats
        metrics.hash_nodes_hashed = hs.nodes_hashed
        metrics.hash_nodes_skipped = hs.nodes_skipped
        metrics.hash_bytes_hashed = hs.bytes_hashed
        metrics.hash_full_passes = hs.full_passes
        metrics.hash_incremental_passes = hs.incremental_passes
