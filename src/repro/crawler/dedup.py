"""Near-duplicate state collapse: banded LSH over simhash fingerprints.

The exact-hash layer in :mod:`repro.model.appmodel` already folds
byte-identical re-observations of a state into one node.  This module
adds the *similarity* layer ROADMAP item 3 calls for: states whose
visible content differs only in volatile regions (timestamps, rotating
ads, per-request noise) collapse into one canonical state, so the
crawler stops re-exploring twins and the index stops fragmenting search
results across them.

Two pieces:

* :class:`BandedLshTable` — ``b`` hash tables, one per band of the
  64-bit simhash.  Inserting a fingerprint registers it under each of
  its band keys; a candidate lookup unions the ``b`` buckets, giving
  O(1) expected candidates per new state instead of a linear scan over
  all canonicals.  With ``b >= threshold + 1`` (the default chosen by
  :func:`repro.dom.simhash.bands_for_threshold`) the lookup is exact:
  no pair within the threshold is ever missed.
* :class:`StateCollapser` — per-crawl state.  Every observed DOM state
  is first short-circuited on its exact content hash; genuinely new
  hashes are fingerprinted, probed through the LSH table, and merged
  into the nearest canonical within the Hamming threshold (first-seen
  wins ties).  Canonicals carry a variant count and a volatile-region
  mask (the union of region ids whose digests differed from the
  canonical's), which the crawler writes into state annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.dom.hashing import changed_regions
from repro.dom.simhash import (
    FINGERPRINT_BITS,
    band_keys,
    bands_for_threshold,
    hamming,
    simhash64,
)

__all__ = ["BandedLshTable", "CollapseOutcome", "StateCollapser"]


class BandedLshTable:
    """Banded locality-sensitive index over 64-bit fingerprints."""

    def __init__(self, bands: int) -> None:
        if bands not in (1, 2, 4, 8, 16, 32, 64):
            raise ValueError(
                f"band count must divide {FINGERPRINT_BITS}, got {bands}"
            )
        self.bands = bands
        self.rows = FINGERPRINT_BITS // bands
        self._tables: list[dict[int, list[int]]] = [{} for _ in range(bands)]

    def insert(self, fingerprint: int, ref: int) -> None:
        """Register ``ref`` (an opaque handle) under every band key."""
        for table, key in zip(self._tables, band_keys(fingerprint, self.bands)):
            table.setdefault(key, []).append(ref)

    def candidates(self, fingerprint: int) -> list[int]:
        """Refs sharing at least one band, deduplicated, insertion order."""
        seen: dict[int, None] = {}
        for table, key in zip(self._tables, band_keys(fingerprint, self.bands)):
            for ref in table.get(key, ()):
                seen[ref] = None
        return list(seen)


@dataclass(frozen=True)
class CollapseOutcome:
    """Result of observing one DOM state.

    ``canonical_hash`` is the content hash the crawler should resolve
    against the application model — the observation's own hash for a
    new canonical or an exact re-observation, the canonical's hash for
    a merge.  ``distance`` is the Hamming distance to the canonical a
    merge landed on (``None`` otherwise).
    """

    canonical_hash: str
    merged: bool = False
    known: bool = False
    distance: Optional[int] = None
    candidates: int = 0


@dataclass
class _Canonical:
    content_hash: str
    fingerprint: int
    regions: dict[str, str]
    variants: int = 1
    volatile_regions: set[str] = field(default_factory=set)


class StateCollapser:
    """Merge near-duplicate states into canonical representatives."""

    def __init__(self, threshold: int, bands: Optional[int] = None) -> None:
        if threshold < 0:
            raise ValueError(f"near-duplicate threshold must be >= 0, got {threshold}")
        required = bands_for_threshold(threshold)
        if bands is None:
            bands = required
        elif bands < required:
            raise ValueError(
                f"{bands} bands cannot guarantee recall at threshold "
                f"{threshold}; need at least {required}"
            )
        self.threshold = threshold
        self.table = BandedLshTable(bands)
        #: Canonicals in first-seen order; LSH refs index into this list.
        self._canonicals: list[_Canonical] = []
        self._by_hash: dict[str, _Canonical] = {}
        #: Every observed content hash -> its canonical's content hash.
        self._variant_to_canonical: dict[str, str] = {}
        # -- accounting surfaced as dedup.* metrics ----------------------
        self.states_hashed = 0
        self.lsh_candidates = 0
        self.hamming_checks = 0
        self.merges = 0

    # -- observation --------------------------------------------------------

    def observe(
        self,
        content_hash: str,
        features: frozenset[str],
        regions: Mapping[str, str],
    ) -> CollapseOutcome:
        """Classify one observed state by its feature set."""
        known = self._variant_to_canonical.get(content_hash)
        if known is not None:
            return CollapseOutcome(canonical_hash=known, known=True)
        self.states_hashed += 1
        return self.observe_fingerprint(content_hash, simhash64(features), regions)

    def observe_fingerprint(
        self,
        content_hash: str,
        fingerprint: int,
        regions: Mapping[str, str],
    ) -> CollapseOutcome:
        """Classify a pre-fingerprinted state (test/property entry point)."""
        known = self._variant_to_canonical.get(content_hash)
        if known is not None:
            return CollapseOutcome(canonical_hash=known, known=True)
        refs = self.table.candidates(fingerprint)
        self.lsh_candidates += len(refs)
        best: Optional[_Canonical] = None
        best_distance = self.threshold + 1
        for ref in sorted(refs):
            canonical = self._canonicals[ref]
            self.hamming_checks += 1
            distance = hamming(fingerprint, canonical.fingerprint)
            if distance < best_distance:
                best = canonical
                best_distance = distance
        if best is not None:
            self.merges += 1
            best.variants += 1
            best.volatile_regions.update(changed_regions(best.regions, regions))
            self._variant_to_canonical[content_hash] = best.content_hash
            return CollapseOutcome(
                canonical_hash=best.content_hash,
                merged=True,
                distance=best_distance,
                candidates=len(refs),
            )
        canonical = _Canonical(
            content_hash=content_hash,
            fingerprint=fingerprint,
            regions=dict(regions),
        )
        self.table.insert(fingerprint, len(self._canonicals))
        self._canonicals.append(canonical)
        self._by_hash[content_hash] = canonical
        self._variant_to_canonical[content_hash] = content_hash
        return CollapseOutcome(canonical_hash=content_hash, candidates=len(refs))

    # -- inspection ---------------------------------------------------------

    @property
    def num_canonicals(self) -> int:
        return len(self._canonicals)

    def canonical_hashes(self) -> list[str]:
        """Canonical content hashes in first-seen order."""
        return [canonical.content_hash for canonical in self._canonicals]

    def canonical_of(self, content_hash: str) -> Optional[str]:
        """Canonical hash an observed hash collapsed into, if any."""
        return self._variant_to_canonical.get(content_hash)

    def variants_of(self, canonical_hash: str) -> int:
        """Observation count folded into a canonical (>= 1)."""
        return self._by_hash[canonical_hash].variants

    def volatile_regions_of(self, canonical_hash: str) -> tuple[str, ...]:
        """Sorted region ids that differed across a canonical's variants."""
        return tuple(sorted(self._by_hash[canonical_hash].volatile_regions))

    def partition(self) -> frozenset[frozenset[str]]:
        """Observed hashes grouped by canonical (order-free comparison)."""
        groups: dict[str, set[str]] = {}
        for variant, canonical in self._variant_to_canonical.items():
            groups.setdefault(canonical, set()).add(variant)
        return frozenset(frozenset(members) for members in groups.values())
