"""The AJAX crawler — the paper's primary contribution.

* :class:`AjaxCrawler` implements the breadth-first state crawl of
  Algorithm 3.1.1 with hash-based duplicate elimination, plus the
  hot-node caching policy of chapter 4 (Algorithm 4.2.1).
* :class:`TraditionalCrawler` is the baseline that reads only the
  initial, JavaScript-free state of each page.
"""

from repro.crawler.ajax import AjaxCrawler
from repro.crawler.base import Crawler, CrawlResult, PageCrawlResult, PageFailure
from repro.crawler.focused import FocusedAjaxCrawler, InterestProfile
from repro.crawler.forms import FORM_EVENT_TYPES, FormFillingAjaxCrawler
from repro.crawler.incremental import CrawlHistory, IncrementalAjaxCrawler
from repro.crawler.config import CrawlerConfig, DEFAULT_CONFIG
from repro.crawler.dedup import BandedLshTable, CollapseOutcome, StateCollapser
from repro.crawler.hotnode import HotNodeCache, HotNodeInterceptor, StackInfo
from repro.crawler.metrics import CrawlReport, PageMetrics
from repro.crawler.traditional import TraditionalCrawler

__all__ = [
    "AjaxCrawler",
    "TraditionalCrawler",
    "Crawler",
    "CrawlResult",
    "PageCrawlResult",
    "PageFailure",
    "CrawlerConfig",
    "DEFAULT_CONFIG",
    "BandedLshTable",
    "CollapseOutcome",
    "StateCollapser",
    "HotNodeCache",
    "HotNodeInterceptor",
    "StackInfo",
    "CrawlReport",
    "PageMetrics",
    "CrawlHistory",
    "IncrementalAjaxCrawler",
    "FocusedAjaxCrawler",
    "InterestProfile",
    "FormFillingAjaxCrawler",
    "FORM_EVENT_TYPES",
]
