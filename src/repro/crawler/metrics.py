"""Crawl measurements.

Chapter 7 reports per-page crawl times, network-time splits, state and
event counts, and dataset-level aggregates.  :class:`PageMetrics` is the
per-page record; :class:`CrawlReport` aggregates a whole crawl and
exposes exactly the quantities the tables/figures need.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PageMetrics:
    """Measurements of crawling one page (one video)."""

    url: str
    #: Total virtual milliseconds spent on this page.
    crawl_time_ms: float = 0.0
    #: Portion of the total spent waiting on the network.
    network_time_ms: float = 0.0
    #: Portion spent executing JavaScript.
    js_time_ms: float = 0.0
    #: Portion spent parsing HTML / restoring DOM snapshots.
    parse_time_ms: float = 0.0
    #: States in the final application model.
    states: int = 0
    #: Events invoked while crawling the page.
    events_invoked: int = 0
    #: AJAX calls that reached the network.
    ajax_calls: int = 0
    #: AJAX calls served from the hot-node cache.
    cached_hits: int = 0
    #: Duplicate states detected by hashing.
    duplicates_detected: int = 0
    #: Destructive (update) events found but deliberately not fired (§4.3).
    update_events_skipped: int = 0
    #: Events skipped because a previous session proved them no-ops
    #: (incremental recrawling, ch. 10 future work).
    events_skipped_from_history: int = 0
    #: Events quarantined after their dispatch exhausted network retries
    #: (the event stays in the model's blind spot rather than killing
    #: the page crawl).
    events_quarantined: int = 0

    @property
    def processing_time_ms(self) -> float:
        """Crawl time minus network time (the lower curve of Fig. 7.4)."""
        return self.crawl_time_ms - self.network_time_ms

    @property
    def time_per_state_ms(self) -> float:
        return self.crawl_time_ms / self.states if self.states else 0.0


@dataclass
class CrawlReport:
    """Aggregate of a whole crawl (one crawler over a URL list)."""

    pages: list[PageMetrics] = field(default_factory=list)

    def add(self, metrics: PageMetrics) -> None:
        self.pages.append(metrics)

    # -- totals -----------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        return len(self.pages)

    @property
    def total_states(self) -> int:
        return sum(page.states for page in self.pages)

    @property
    def total_events(self) -> int:
        return sum(page.events_invoked for page in self.pages)

    @property
    def total_ajax_calls(self) -> int:
        return sum(page.ajax_calls for page in self.pages)

    @property
    def total_cached_hits(self) -> int:
        return sum(page.cached_hits for page in self.pages)

    @property
    def total_events_quarantined(self) -> int:
        return sum(page.events_quarantined for page in self.pages)

    @property
    def total_time_ms(self) -> float:
        return sum(page.crawl_time_ms for page in self.pages)

    @property
    def total_network_time_ms(self) -> float:
        return sum(page.network_time_ms for page in self.pages)

    # -- means ------------------------------------------------------------------

    @property
    def mean_time_per_page_ms(self) -> float:
        return self.total_time_ms / self.num_pages if self.pages else 0.0

    @property
    def mean_time_per_state_ms(self) -> float:
        states = self.total_states
        return self.total_time_ms / states if states else 0.0

    @property
    def mean_events_per_page(self) -> float:
        return self.total_events / self.num_pages if self.pages else 0.0

    # -- throughput ---------------------------------------------------------------

    @property
    def states_per_second(self) -> float:
        """State throughput (Figure 7.7)."""
        seconds = self.total_time_ms / 1000.0
        return self.total_states / seconds if seconds > 0 else 0.0

    @property
    def pages_per_second(self) -> float:
        seconds = self.total_time_ms / 1000.0
        return self.num_pages / seconds if seconds > 0 else 0.0

    def merge(self, other: "CrawlReport") -> None:
        """Fold another report into this one (parallel partitions)."""
        self.pages.extend(other.pages)
