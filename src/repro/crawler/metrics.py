"""Crawl measurements.

Chapter 7 reports per-page crawl times, network-time splits, state and
event counts, and dataset-level aggregates.  :class:`PageMetrics` is the
per-page record; :class:`CrawlReport` aggregates a whole crawl and
exposes exactly the quantities the tables/figures need.

Since the observability layer landed, the aggregate counters live in a
:class:`~repro.obs.MetricsRegistry` (namespace ``crawl.*``): every
``add()`` books the page's numbers into the registry, and the
historical ``total_*`` attributes are thin properties over it, so the
crawl-level and network-level accounting share one mechanism and merge
the same way across :class:`~repro.parallel.MPAjaxCrawler` partitions.
The per-page records are kept as well — Figures 7.3/7.4 need per-page
distributions, not just totals.

Aggregation detail that matters for reproducibility: ``merge`` re-books
the other report's pages one at a time, so the float accumulation order
equals a single-process crawl over the concatenated page list and the
totals stay bit-identical to the pre-registry implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.metrics import MetricsRegistry


@dataclass
class PageMetrics:
    """Measurements of crawling one page (one video)."""

    url: str
    #: Total virtual milliseconds spent on this page.
    crawl_time_ms: float = 0.0
    #: Portion of the total spent waiting on the network.
    network_time_ms: float = 0.0
    #: Portion spent executing JavaScript.
    js_time_ms: float = 0.0
    #: Portion spent parsing HTML / restoring DOM snapshots.
    parse_time_ms: float = 0.0
    #: States in the final application model.
    states: int = 0
    #: Events invoked while crawling the page.
    events_invoked: int = 0
    #: AJAX calls that reached the network.
    ajax_calls: int = 0
    #: AJAX calls served from the hot-node cache.
    cached_hits: int = 0
    #: Duplicate states detected by hashing.
    duplicates_detected: int = 0
    #: Destructive (update) events found but deliberately not fired (§4.3).
    update_events_skipped: int = 0
    #: Events skipped because a previous session proved them no-ops
    #: (incremental recrawling, ch. 10 future work).
    events_skipped_from_history: int = 0
    #: Events quarantined after their dispatch exhausted network retries
    #: (the event stays in the model's blind spot rather than killing
    #: the page crawl).
    events_quarantined: int = 0
    #: New states rejected by the per-page state cap (§4.3) — content
    #: the model deliberately discarded (the doctor's truncation rule).
    states_capped: int = 0
    #: DOM changes merged into a near-duplicate canonical state (banded
    #: LSH collapse; only nonzero when ``near_dup_threshold`` is set).
    states_collapsed: int = 0
    #: Observations fingerprinted by the collapser (exact re-observations
    #: short-circuit before fingerprinting and are not counted).
    dedup_states_hashed: int = 0
    #: Canonical candidates returned by banded LSH lookups.
    dedup_lsh_candidates: int = 0
    #: Hamming distance computations performed against candidates.
    dedup_hamming_checks: int = 0
    #: DOM nodes whose canonical bytes were (re)built while hashing.
    hash_nodes_hashed: int = 0
    #: DOM nodes served from clean Merkle subtree caches.
    hash_nodes_skipped: int = 0
    #: Bytes actually fed to SHA-256 across all hash passes.
    hash_bytes_hashed: int = 0
    #: Hash passes that rebuilt the whole tree from scratch.
    hash_full_passes: int = 0
    #: Hash passes that reused cached subtree digests.
    hash_incremental_passes: int = 0

    @property
    def processing_time_ms(self) -> float:
        """Crawl time minus network time (the lower curve of Fig. 7.4)."""
        return self.crawl_time_ms - self.network_time_ms

    @property
    def time_per_state_ms(self) -> float:
        return self.crawl_time_ms / self.states if self.states else 0.0


class CrawlReport:
    """Aggregate of a whole crawl (one crawler over a URL list)."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.pages: list[PageMetrics] = []
        #: The backing registry (``crawl.*`` namespace); share one to
        #: unify accounting with other components, or merge across
        #: partitions after a parallel crawl.
        self.registry = registry if registry is not None else MetricsRegistry()

    def add(self, metrics: PageMetrics) -> None:
        self.pages.append(metrics)
        registry = self.registry
        registry.inc("crawl.pages")
        registry.inc("crawl.states", metrics.states)
        registry.inc("crawl.events_invoked", metrics.events_invoked)
        registry.inc("crawl.ajax_calls", metrics.ajax_calls)
        registry.inc("crawl.cached_hits", metrics.cached_hits)
        registry.inc("crawl.duplicates_detected", metrics.duplicates_detected)
        registry.inc("crawl.update_events_skipped", metrics.update_events_skipped)
        registry.inc(
            "crawl.events_skipped_from_history", metrics.events_skipped_from_history
        )
        registry.inc("crawl.events_quarantined", metrics.events_quarantined)
        registry.inc("crawl.states_capped", metrics.states_capped)
        if metrics.dedup_states_hashed:
            # Booked only when the page actually ran the collapser, so
            # dedup-off registry snapshots stay byte-identical to main.
            registry.inc("crawl.states_collapsed", metrics.states_collapsed)
            registry.inc("dedup.states_hashed", metrics.dedup_states_hashed)
            registry.inc("dedup.lsh_candidates", metrics.dedup_lsh_candidates)
            registry.inc("dedup.hamming_checks", metrics.dedup_hamming_checks)
        registry.inc("crawl.hash_nodes_hashed", metrics.hash_nodes_hashed)
        registry.inc("crawl.hash_nodes_skipped", metrics.hash_nodes_skipped)
        registry.inc("crawl.hash_bytes_hashed", metrics.hash_bytes_hashed)
        registry.inc("crawl.hash_full_passes", metrics.hash_full_passes)
        registry.inc("crawl.hash_incremental_passes", metrics.hash_incremental_passes)
        registry.inc("crawl.crawl_time_ms", metrics.crawl_time_ms)
        registry.inc("crawl.network_time_ms", metrics.network_time_ms)
        registry.inc("crawl.js_time_ms", metrics.js_time_ms)
        registry.inc("crawl.parse_time_ms", metrics.parse_time_ms)
        registry.observe("crawl.page_time_ms", metrics.crawl_time_ms)
        registry.observe("crawl.states_per_page", metrics.states)

    # -- totals (thin properties over the registry) -------------------------------

    @property
    def num_pages(self) -> int:
        return int(self.registry.counter("crawl.pages"))

    @property
    def total_states(self) -> int:
        return int(self.registry.counter("crawl.states"))

    @property
    def total_events(self) -> int:
        return int(self.registry.counter("crawl.events_invoked"))

    @property
    def total_ajax_calls(self) -> int:
        return int(self.registry.counter("crawl.ajax_calls"))

    @property
    def total_cached_hits(self) -> int:
        return int(self.registry.counter("crawl.cached_hits"))

    @property
    def total_events_quarantined(self) -> int:
        return int(self.registry.counter("crawl.events_quarantined"))

    @property
    def total_states_capped(self) -> int:
        return int(self.registry.counter("crawl.states_capped"))

    @property
    def total_states_collapsed(self) -> int:
        return int(self.registry.counter("crawl.states_collapsed"))

    @property
    def total_time_ms(self) -> float:
        return self.registry.counter("crawl.crawl_time_ms")

    @property
    def total_network_time_ms(self) -> float:
        return self.registry.counter("crawl.network_time_ms")

    # -- means ------------------------------------------------------------------

    @property
    def mean_time_per_page_ms(self) -> float:
        return self.total_time_ms / self.num_pages if self.pages else 0.0

    @property
    def mean_time_per_state_ms(self) -> float:
        states = self.total_states
        return self.total_time_ms / states if states else 0.0

    @property
    def mean_events_per_page(self) -> float:
        return self.total_events / self.num_pages if self.pages else 0.0

    # -- throughput ---------------------------------------------------------------

    @property
    def states_per_second(self) -> float:
        """State throughput (Figure 7.7)."""
        seconds = self.total_time_ms / 1000.0
        return self.total_states / seconds if seconds > 0 else 0.0

    @property
    def pages_per_second(self) -> float:
        seconds = self.total_time_ms / 1000.0
        return self.num_pages / seconds if seconds > 0 else 0.0

    def merge(self, other: "CrawlReport") -> None:
        """Fold another report into this one (parallel partitions).

        Pages are re-booked one at a time (not registry-merged) so the
        float accumulation order matches a single-process crawl.
        """
        for page in other.pages:
            self.add(page)
