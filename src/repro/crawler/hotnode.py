"""The hot-node heuristic (chapter 4).

A **hot node** is a script function whose execution reaches the network
— on the YouTube page, ``getUrl`` (reached from
``getUrlXMLResponseAndFillDiv``).  A **hot call** is a concrete
invocation with actual parameters.  The optimization: remember the
server content per hot call and never fetch it twice.

Two cooperating pieces implement this:

* :class:`HotNodeCache` — the policy object plugged into
  :class:`~repro.net.xhr.XMLHttpRequest`.  At ``send()`` time the XHR
  computes the :class:`StackInfo` (topmost script frame + actual args,
  section 4.4.1) and asks the cache; a hit delivers the stored response
  without any network traffic (section 4.4.2's "instead of the following
  XMLHttpRequest.open() and send() we deliver the cached result").

* :class:`HotNodeInterceptor` — an optional, more aggressive variant
  built on the Rhino-style debugger: when a *whole function call*
  matches a cached hot call, ``on_enter`` skips the body entirely and
  returns the recorded result.  Safe only for pure fetch functions; kept
  as an ablation mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.js.debugger import CallStack, Debugger, Intercept, StackFrame
from repro.net.xhr import HotCallPolicy


@dataclass(frozen=True)
class StackInfo:
    """The thesis' ``StackInfo``: hot-node name plus rendered arguments."""

    function_name: str
    arguments: str

    @property
    def key(self) -> str:
        return f"{self.function_name}({self.arguments})"

    @classmethod
    def from_call_stack(cls, stack: CallStack) -> Optional["StackInfo"]:
        """Extract the topmost currently-executing *script* function."""
        frame = stack.top_script_frame()
        if frame is None:
            return None
        return cls.from_frame(frame)

    @classmethod
    def from_frame(cls, frame: StackFrame) -> "StackInfo":
        return cls(function_name=frame.function_name, arguments=frame.render_arguments())

    @classmethod
    def from_signature(cls, signature: str) -> "StackInfo":
        """Parse a rendered ``name(args)`` signature back into parts."""
        name, _, rest = signature.partition("(")
        return cls(function_name=name, arguments=rest.rstrip(")"))


@dataclass
class HotNodeCache(HotCallPolicy):
    """The Hot Node Cache (Table 4.4): hot call signature → server content."""

    enabled: bool = True
    _cache: dict[str, str] = field(default_factory=dict)
    #: Names of functions observed to be hot nodes (Step 1 of §4.2).
    hot_nodes: set[str] = field(default_factory=set)
    #: Counters.
    lookups: int = 0
    hits: int = 0
    stores: int = 0

    # -- HotCallPolicy interface ---------------------------------------------------

    def lookup(self, signature: str) -> Optional[str]:
        if not self.enabled:
            return None
        self.lookups += 1
        cached = self._cache.get(signature)
        if cached is not None:
            self.hits += 1
        return cached

    def store(self, signature: str, response_body: str) -> None:
        if not self.enabled:
            return
        self._cache[signature] = response_body
        self.hot_nodes.add(StackInfo.from_signature(signature).function_name)
        self.stores += 1

    # -- management ------------------------------------------------------------------

    def contains(self, signature: str) -> bool:
        return signature in self._cache

    def clear(self) -> None:
        """Drop cached content (e.g. between crawl sessions)."""
        self._cache.clear()

    @property
    def size(self) -> int:
        return len(self._cache)

    @property
    def misses(self) -> int:
        return self.lookups - self.hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> dict[str, float]:
        """Counters in one dict (what ``trace doctor`` / --profile print)."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
            "entries": self.size,
            "hot_nodes": len(self.hot_nodes),
        }

    def entries(self) -> dict[str, str]:
        """A copy of the cache contents (Table 4.4 rows)."""
        return dict(self._cache)


class HotNodeInterceptor(Debugger):
    """Debugger-level interception of whole hot-node calls (§4.4.2).

    Watches ``on_enter``: when the entered function+arguments matches a
    recorded hot call, the call is skipped and the recorded *return
    value* delivered.  Results are recorded on ``on_exit`` of calls that
    performed a real fetch (marked by the XHR observer via
    :meth:`mark_pending`).
    """

    def __init__(self) -> None:
        self._results: dict[str, Any] = {}
        self._pending: set[str] = set()
        self.intercepted = 0

    def mark_pending(self, signature: str) -> None:
        """Note that the currently executing hot call should be recorded."""
        self._pending.add(signature)

    def on_enter(self, frame: StackFrame) -> Optional[Intercept]:
        key = StackInfo.from_frame(frame).key
        if key in self._results:
            self.intercepted += 1
            return Intercept(self._results[key])
        return None

    def on_exit(self, frame: StackFrame, result: Any) -> None:
        key = StackInfo.from_frame(frame).key
        if key in self._pending:
            self._pending.discard(key)
            self._results[key] = result

    @property
    def recorded(self) -> int:
        return len(self._results)
