"""Form-filling AJAX crawling — chapter 10 future work.

"A second [avenue] is to address forms in AJAX applications.  Most AJAX
applications allow user input.  Combining AJAX Search and work on Deep
Web can provide insight on which content is relevant for crawling."

The :class:`FormFillingAjaxCrawler` applies the classic Deep-Web recipe
(Raghavan & Garcia-Molina style) to AJAX state crawling: every text
input that carries a form event (``onkeyup``/``onchange``/``oninput``)
is *typed into* with each value of a caller-provided dictionary, then
its handler fires — so a Google-Suggest-style application exposes one
state per probed value.  Transitions are annotated with the typed value,
which keeps result aggregation (event replay) working.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.browser import Page
from repro.browser.events import EventBinding
from repro.crawler.ajax import AjaxCrawler
from repro.crawler.config import CrawlerConfig, DEFAULT_CONFIG
from repro.clock import CostModel, SimClock
from repro.net.server import SimulatedServer

#: Event attributes treated as "form events" (fired after typing).
FORM_EVENT_TYPES = ("onkeyup", "onchange", "oninput")

#: Input types that accept typed text.
_TEXT_INPUT_TYPES = {"", "text", "search"}


class FormFillingAjaxCrawler(AjaxCrawler):
    """An AJAX crawler that probes text inputs with dictionary values."""

    def __init__(
        self,
        server: SimulatedServer,
        value_dictionary: Sequence[str],
        config: CrawlerConfig = DEFAULT_CONFIG,
        form_event_types: Sequence[str] = FORM_EVENT_TYPES,
        clock: Optional[SimClock] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        super().__init__(server, config, clock=clock, cost_model=cost_model)
        self.value_dictionary = tuple(value_dictionary)
        self.form_event_types = tuple(form_event_types)

    def _enumerate_events(self, page: Page) -> list[EventBinding]:
        bindings = list(super()._enumerate_events(page))
        for form_binding in page.events(self.form_event_types):
            element = form_binding.locator.resolve(page.document)
            if element is None or not self._is_text_input(element):
                continue
            for value in self.value_dictionary:
                bindings.append(dataclasses.replace(form_binding, input_value=value))
        return bindings

    @staticmethod
    def _is_text_input(element) -> bool:
        if element.tag == "textarea":
            return True
        if element.tag != "input":
            return False
        return (element.get_attribute("type") or "").lower() in _TEXT_INPUT_TYPES
