"""The traditional crawler baseline (section 7.1.2).

Reads only what a JavaScript-disabled browser would see: the initial
DOM, including the first comment page that YouTube inlines.  No events
are invoked — not even the body ``onload``.  Its application model has
exactly one state, which makes it directly comparable to the AJAX
crawler's model in the search-quality experiments.
"""

from __future__ import annotations

from typing import Optional

from repro.browser import Browser, JS_ACCOUNT, PARSE_ACCOUNT
from repro.clock import CostModel, SimClock, Stopwatch
from repro.crawler.base import Crawler, PageCrawlResult
from repro.crawler.config import CrawlerConfig, DEFAULT_CONFIG
from repro.crawler.metrics import PageMetrics
from repro.model import ApplicationModel
from repro.net import NETWORK_ACCOUNT
from repro.net.server import SimulatedServer
from repro.obs import NULL_RECORDER


class TraditionalCrawler(Crawler):
    """Crawls pages the way a 2008 search engine did: one state per URL."""

    def __init__(
        self,
        server: SimulatedServer,
        config: CrawlerConfig = DEFAULT_CONFIG,
        clock: Optional[SimClock] = None,
        cost_model: Optional[CostModel] = None,
        recorder=NULL_RECORDER,
    ) -> None:
        self.config = config
        self.recorder = recorder
        self.browser = Browser(
            server,
            clock=clock,
            cost_model=cost_model,
            javascript_enabled=False,
            retry_policy=config.retry_policy(),
            recorder=recorder,
        )

    @property
    def clock(self) -> SimClock:
        return self.browser.clock

    @property
    def stats(self):
        return self.browser.stats

    def crawl_page(self, url: str) -> PageCrawlResult:
        watch = Stopwatch(self.clock)
        network_before = self.clock.spent_on(NETWORK_ACCOUNT)
        parse_before = self.clock.spent_on(PARSE_ACCOUNT)

        page = self.browser.load(url)
        model = ApplicationModel(url)
        html = None
        if self.config.store_html:
            from repro.dom import serialize

            html = serialize(page.document)
        model.add_state(page.content_hash(), page.text, html=html, depth=0)
        self.clock.advance(self.browser.cost_model.model_insert_ms, account="model")

        metrics = PageMetrics(
            url=url,
            crawl_time_ms=watch.elapsed_ms,
            network_time_ms=self.clock.spent_on(NETWORK_ACCOUNT) - network_before,
            js_time_ms=self.clock.spent_on(JS_ACCOUNT),
            parse_time_ms=self.clock.spent_on(PARSE_ACCOUNT) - parse_before,
            states=1,
            events_invoked=0,
            ajax_calls=0,
            cached_hits=0,
        )
        return PageCrawlResult(model=model, metrics=metrics)
