"""Shared result types and the crawler interface."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crawler.metrics import CrawlReport, PageMetrics
from repro.errors import ReproError
from repro.model import ApplicationModel
from repro.obs import NULL_RECORDER


@dataclass
class PageCrawlResult:
    """Everything produced by crawling one page."""

    model: ApplicationModel
    metrics: PageMetrics


@dataclass
class PageFailure:
    """One URL whose crawl failed, with enough context to triage it.

    Deferred/failed representations are a first-class crawl outcome
    (cf. two-tiered crawling in PAPERS.md), not an exception: the report
    carries what went wrong, how hard the gateway tried and how much
    virtual time the attempt burned.
    """

    url: str
    #: Human-readable error (the exception message).
    error: str
    #: Network attempts made for the failing request (1 = no retries).
    attempts: int = 1
    #: Virtual milliseconds spent on the page before giving up.
    elapsed_ms: float = 0.0


@dataclass
class CrawlResult:
    """Everything produced by crawling a list of URLs."""

    models: list[ApplicationModel] = field(default_factory=list)
    report: CrawlReport = field(default_factory=CrawlReport)
    #: URLs whose crawl failed (dead links, server errors) when the
    #: crawler runs in fault-tolerant mode.
    failed_urls: list[str] = field(default_factory=list)
    #: Per-URL failure records (same URLs as ``failed_urls``, enriched).
    failures: list[PageFailure] = field(default_factory=list)

    def add(self, page_result: PageCrawlResult) -> None:
        self.models.append(page_result.model)
        self.report.add(page_result.metrics)

    def merge(self, other: "CrawlResult") -> None:
        self.models.extend(other.models)
        self.report.merge(other.report)
        self.failed_urls.extend(other.failed_urls)
        self.failures.extend(other.failures)


class Crawler:
    """Interface: crawl one page or a list of pages."""

    def crawl_page(self, url: str) -> PageCrawlResult:
        raise NotImplementedError

    def crawl(self, urls: list[str], fail_fast: bool = False) -> CrawlResult:
        """Crawl every URL, collecting models and metrics.

        By default a page that fails (404, server error, broken script
        environment) is recorded as a :class:`PageFailure` (and in
        ``failed_urls``) and the crawl moves on — a production crawler
        must survive dead links.  With ``fail_fast=True`` the first
        failure propagates.
        """
        result = CrawlResult()
        clock = getattr(self, "clock", None)
        recorder = getattr(self, "recorder", NULL_RECORDER)
        with recorder.span("crawl", pages=len(urls)) as crawl_span:
            for url in urls:
                started_ms = clock.now_ms if clock is not None else 0.0
                with recorder.span("page", url=url) as page_span:
                    try:
                        page_result = self.crawl_page(url)
                    except ReproError as error:
                        if fail_fast:
                            raise
                        elapsed = (
                            clock.now_ms - started_ms if clock is not None else 0.0
                        )
                        result.failed_urls.append(url)
                        result.failures.append(
                            PageFailure(
                                url=url,
                                error=str(error),
                                attempts=getattr(error, "attempts", 1),
                                elapsed_ms=elapsed,
                            )
                        )
                        page_span.annotate(failed=True)
                    else:
                        result.add(page_result)
                        page_span.annotate(states=page_result.metrics.states)
            crawl_span.annotate(
                pages_ok=result.report.num_pages, pages_failed=len(result.failed_urls)
            )
        return result
