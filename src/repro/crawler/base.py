"""Shared result types and the crawler interface."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crawler.metrics import CrawlReport, PageMetrics
from repro.errors import ReproError
from repro.model import ApplicationModel


@dataclass
class PageCrawlResult:
    """Everything produced by crawling one page."""

    model: ApplicationModel
    metrics: PageMetrics


@dataclass
class CrawlResult:
    """Everything produced by crawling a list of URLs."""

    models: list[ApplicationModel] = field(default_factory=list)
    report: CrawlReport = field(default_factory=CrawlReport)
    #: URLs whose crawl failed (dead links, server errors) when the
    #: crawler runs in fault-tolerant mode.
    failed_urls: list[str] = field(default_factory=list)

    def add(self, page_result: PageCrawlResult) -> None:
        self.models.append(page_result.model)
        self.report.add(page_result.metrics)

    def merge(self, other: "CrawlResult") -> None:
        self.models.extend(other.models)
        self.report.merge(other.report)
        self.failed_urls.extend(other.failed_urls)


class Crawler:
    """Interface: crawl one page or a list of pages."""

    def crawl_page(self, url: str) -> PageCrawlResult:
        raise NotImplementedError

    def crawl(self, urls: list[str], fail_fast: bool = False) -> CrawlResult:
        """Crawl every URL, collecting models and metrics.

        By default a page that fails (404, server error, broken script
        environment) is recorded in ``failed_urls`` and the crawl moves
        on — a production crawler must survive dead links.  With
        ``fail_fast=True`` the first failure propagates.
        """
        result = CrawlResult()
        for url in urls:
            try:
                result.add(self.crawl_page(url))
            except ReproError:
                if fail_fast:
                    raise
                result.failed_urls.append(url)
        return result
