"""Crawler configuration.

Mirrors the ``AJAXConfig`` knobs of chapter 8 that matter for the
algorithms: the additional-state cap (``SACR_NUM_OF_ADDITIONAL_STATES``),
the hot-node switch (``USE_DEBUGGER``), traditional-mode
(``TRADITIONAL_CRAWLING``) and the guards of section 3.2 against state
explosion and infinite event invocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.browser.events import DEFAULT_EVENT_TYPES
from repro.net.faults import RetryPolicy


@dataclass(frozen=True)
class CrawlerConfig:
    """Knobs shared by the crawling algorithms."""

    #: Maximum number of additional states per page, not counting the
    #: initial one (the thesis used 10 for YouTube10000).
    max_additional_states: int = 10
    #: Hard cap on event invocations per page: the guard against
    #: infinite event invocation (§3.2).
    max_event_invocations: int = 500
    #: Event attributes invoked by the crawler (§3.2 "Irrelevant events").
    event_types: tuple[str, ...] = tuple(DEFAULT_EVENT_TYPES)
    #: Whether the hot-node policy (chapter 4) is active.
    use_hot_node: bool = True
    #: Keep the serialized DOM of every state in the model (needed for
    #: offline state reconstruction; costs memory).
    store_html: bool = False
    #: Interpreter step budget per page (infinite-loop guard, §3.2).
    max_js_steps: int = 2_000_000
    #: When False, hash-based duplicate elimination is disabled — every
    #: DOM change becomes a new state (ablation for DESIGN.md §5.1).
    deduplicate_states: bool = True
    #: Handler substrings marking *update events* the crawler must never
    #: fire (§4.3 "No update events": deleting mails from a crawled
    #: inbox).  Matching is case-insensitive on the handler source.
    update_event_patterns: tuple[str, ...] = (
        "delete",
        "remove",
        "destroy",
        "logout",
        "submitform",
    )
    #: Honour per-site crawl-granularity hints (§4.3 predicts AJAX sites
    #: will publish a robots.txt-style file; ours is /ajax-robots.json
    #: with a ``max_states`` field).  The hint can only *lower* the cap.
    respect_granularity_hints: bool = True
    #: State identity function (§3.2 / related work on near-duplicates):
    #: "dom" hashes the canonical DOM serialization (exact identity);
    #: "text" hashes whitespace-normalized visible text, so states that
    #: differ only in markup (counters, styling attributes) collapse.
    state_identity: str = "dom"
    #: When True (default) the crawler performs one combined Merkle hash
    #: pass per fired event (state hash + region map, re-hashing only
    #: dirty subtrees) and rollbacks clone warm-cached master trees.
    #: False reproduces the seed full-rewalk/re-parse behaviour — the
    #: baseline mode of ``benchmarks/bench_perf_hashing.py``.  Both
    #: modes produce byte-identical hashes, models and traces.
    incremental_hashing: bool = True
    #: Emit ``hash_full``/``hash_incremental`` trace events per hash
    #: pass.  Off by default so the golden traces (recorded before this
    #: event kind existed) stay byte-identical; enable to observe the
    #: hashing work distribution of a traced crawl.
    trace_hashing: bool = False
    #: Emit one ``js_fn`` span per script function call (requires a
    #: recorder with spans on).  Off by default — frame spans are the
    #: heaviest instrumentation and only profiling runs want them.
    trace_js_frames: bool = False
    #: Near-duplicate collapse (ROADMAP item 3): maximum simhash Hamming
    #: distance at which a newly observed state merges into an existing
    #: canonical state instead of becoming its own node.  ``None`` (the
    #: default) disables the layer entirely — exact-hash identity only,
    #: keeping every golden trace and parity check byte-identical.
    near_dup_threshold: Optional[int] = None
    #: LSH band count for candidate lookup.  ``None`` picks the smallest
    #: power-of-two band count guaranteeing recall 1 at the threshold
    #: (``bands_for_threshold``); explicit values must be at least that.
    near_dup_bands: Optional[int] = None
    #: Attempts per network request (1 = no retries, the legacy default,
    #: which keeps the happy-path benchmarks byte-identical).
    retry_max_attempts: int = 1
    #: Backoff before the first retry (exponential afterwards).
    retry_backoff_base_ms: float = 100.0
    #: Backoff growth factor per additional retry.
    retry_backoff_multiplier: float = 2.0
    #: Deterministic jitter half-range as a fraction of the backoff.
    retry_jitter: float = 0.1

    @property
    def max_states(self) -> int:
        """Total state cap per page (initial + additional)."""
        return self.max_additional_states + 1

    def retry_policy(self) -> Optional[RetryPolicy]:
        """The gateway retry policy these knobs describe (None = legacy)."""
        if self.retry_max_attempts <= 1:
            return None
        return RetryPolicy(
            max_attempts=self.retry_max_attempts,
            backoff_base_ms=self.retry_backoff_base_ms,
            backoff_multiplier=self.retry_backoff_multiplier,
            jitter=self.retry_jitter,
        )


#: Convenience default used across tests/benchmarks.
DEFAULT_CONFIG = CrawlerConfig()
