"""Deterministic large-corpus minting for index benchmarks.

The index benchmark needs a 100k-state corpus; *crawling* one through
the simulated browser takes tens of minutes, which is useless inside
``make check``.  But the indexable artifact of a crawl is just the
per-state text — and the generator's ground truth already determines it
exactly.  So this module synthesizes the :class:`ApplicationModel`s a
conformance crawl would produce **directly from the spec**: same state
order (BFS from state 0), same rendered text (heading, marker+words
paragraph, nav links), same depths, no crawler in the loop.  Minting is
pure arithmetic over ``generate_site``'s RNG stream, so any scale knob
value yields the same corpus on every machine.
"""

from __future__ import annotations

from collections import deque

from repro.model import ApplicationModel, EventAnnotation
from repro.testgen.generator import MIN_STATES, generate_site
from repro.testgen.spec import PageSpec, SiteSpec

#: States per page of a minted corpus (every page gets exactly this many).
CORPUS_STATES_PER_PAGE = 5


def corpus_spec(
    num_states: int,
    seed: int = 0,
    states_per_page: int = CORPUS_STATES_PER_PAGE,
) -> SiteSpec:
    """A spec with (at least) ``num_states`` states, minted from ``seed``.

    Every page holds exactly ``states_per_page`` states so the page
    count — and with it the whole RNG stream — is a pure function of the
    scale knob.  The total is rounded up to a whole page.
    """
    if num_states < 1:
        raise ValueError("a corpus needs at least one state")
    if states_per_page < MIN_STATES:
        raise ValueError(f"corpus pages need >= {MIN_STATES} states")
    num_pages = -(-num_states // states_per_page)
    return generate_site(
        seed,
        num_pages=num_pages,
        min_states=states_per_page,
        max_states=states_per_page,
    )


def _bfs_order(page: PageSpec) -> list[tuple[int, int]]:
    """``(state, depth)`` in the breadth-first discovery order a crawl
    of the page produces (edges explored in document order)."""
    adjacency: dict[int, list[int]] = {}
    for transition in page.transitions:
        adjacency.setdefault(transition.src, []).append(transition.dst)
    seen = {0}
    order = [(0, 0)]
    queue = deque([(0, 0)])
    while queue:
        state, depth = queue.popleft()
        for nxt in adjacency.get(state, []):
            if nxt in seen:
                continue
            seen.add(nxt)
            order.append((nxt, depth + 1))
            queue.append((nxt, depth + 1))
    return order


def state_text(page: PageSpec, state: int) -> str:
    """The text a rendered fragment of ``state`` tokenizes to."""
    parts = [f"area {page.page_id} state {state}"]
    parts.append(f"{page.markers[state]} {' '.join(page.words[state])}")
    for transition in page.outgoing(state):
        parts.append(f"visit {transition.dst}")
    return " ".join(parts)


def corpus_models(spec: SiteSpec) -> list[ApplicationModel]:
    """Synthesize the crawled models of ``spec`` without crawling.

    One :class:`ApplicationModel` per page, states added in BFS
    discovery order with crawl depths, plus the transition graph (so
    AJAXRank and aggregation work on minted corpora too).
    """
    models = []
    for page in spec.pages:
        model = ApplicationModel(spec.page_url(page.page_id))
        by_index: dict[int, str] = {}
        for state, depth in _bfs_order(page):
            added, _ = model.add_state(
                content_hash=f"corpus-{spec.seed}-{page.page_id}-{state}",
                text=state_text(page, state),
                depth=depth,
            )
            by_index[state] = added.state_id
        for transition in page.transitions:
            if transition.src not in by_index or transition.dst not in by_index:
                continue
            model.add_transition(
                model.get_state(by_index[transition.src]),
                model.get_state(by_index[transition.dst]),
                EventAnnotation(
                    source=f"#nav-{transition.src}-{transition.dst}",
                    trigger="click",
                    handler="loadFragment",
                ),
            )
        models.append(model)
    return models
