"""Seed-parameterized sampling of synthetic AJAX applications.

``generate_site(seed)`` deterministically samples a :class:`SiteSpec`:
per page a random spanning arborescence rooted at state 0 (so every
state is reachable) plus extra random edges, with three invariants the
conformance oracles rely on:

* **no self loops** — every sampled edge changes the DOM, so the
  crawler records exactly one transition per edge;
* **no duplicate (src, dst) edges** — the recovered edge set matches
  the spec edge set bijectively;
* **at least one state with in-degree >= 2** — some fragment is fetched
  twice by a basic crawl, so a hot-node crawl performs *strictly* fewer
  network calls (the chapter-4 claim the parity check asserts).

Markers are single alphanumeric tokens unique across the whole site
(``mg<seed>p<page>s<state>``), so any crawled state's text identifies
its spec state and a marker query must hit exactly one indexed state.
"""

from __future__ import annotations

import random

from repro.testgen.spec import PageSpec, SiteSpec, TransitionSpec

#: Shared vocabulary sprinkled over state fragments (search realism:
#: non-unique terms with document frequency > 1).  Deliberately free of
#: the default ``update_event_patterns`` substrings (delete/remove/...)
#: so no generated handler is ever mistaken for a destructive event.
WORD_CORPUS = (
    "amber", "basalt", "cobalt", "delta", "ember", "fjord", "garnet",
    "harbor", "indigo", "jasper", "krypton", "lagoon", "meadow", "nectar",
    "onyx", "prairie", "quartz", "russet", "sierra", "tundra", "umber",
    "violet", "willow", "xenon", "yonder", "zephyr",
)

#: Hard floor: below three states a duplicate-target edge cannot be
#: sampled without a self loop or duplicate edge (see invariants above).
MIN_STATES = 3


def generate_page(
    rng: random.Random,
    seed: int,
    page_id: int,
    min_states: int = MIN_STATES,
    max_states: int = 6,
    extra_edges: int = 3,
    words_per_state: int = 3,
) -> PageSpec:
    """Sample one page's transition graph from ``rng``."""
    if min_states < MIN_STATES:
        raise ValueError(f"generated pages need >= {MIN_STATES} states")
    if max_states < min_states:
        raise ValueError("max_states must be >= min_states")
    n = rng.randint(min_states, max_states)
    edges: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    # Spanning arborescence: state k (k >= 1) is entered from a random
    # earlier state, so every state is reachable from state 0.
    for k in range(1, n):
        edge = (rng.randrange(k), k)
        edges.append(edge)
        seen.add(edge)
    # Extra edges thicken the graph (back edges, cross edges).
    for _ in range(rng.randint(0, extra_edges)):
        src, dst = rng.randrange(n), rng.randrange(n)
        if src == dst or (src, dst) in seen:
            continue
        edges.append((src, dst))
        seen.add((src, dst))
    _ensure_duplicate_target(rng, n, edges, seen)
    transitions = tuple(
        TransitionSpec(src=src, dst=dst, element_id=f"go{page_id}x{src}x{dst}")
        for src, dst in edges
    )
    markers = tuple(f"mg{seed}p{page_id}s{state}" for state in range(n))
    words = tuple(
        tuple(rng.sample(WORD_CORPUS, k=words_per_state)) for _ in range(n)
    )
    return PageSpec(
        page_id=page_id,
        path=f"/app/{page_id}",
        num_states=n,
        transitions=transitions,
        markers=markers,
        words=words,
    )


def _ensure_duplicate_target(
    rng: random.Random,
    n: int,
    edges: list[tuple[int, int]],
    seen: set[tuple[int, int]],
) -> None:
    """Force some state to have in-degree >= 2 (hot-node saving > 0)."""
    in_degree: dict[int, int] = {}
    for _, dst in edges:
        in_degree[dst] = in_degree.get(dst, 0) + 1
    if any(count >= 2 for count in in_degree.values()):
        return
    # Every tree target has in-degree exactly 1; add one more edge to a
    # random such target from a random other state.  With n >= 3 at
    # least one (src, dst) pair is always free.
    targets = [dst for dst in range(1, n)]
    rng.shuffle(targets)
    for dst in targets:
        sources = [src for src in range(n) if src != dst and (src, dst) not in seen]
        if sources:
            src = rng.choice(sources)
            edges.append((src, dst))
            seen.add((src, dst))
            return
    raise AssertionError("unreachable: n >= 3 always admits a duplicate-target edge")


def generate_site(
    seed: int,
    num_pages: int = 1,
    min_states: int = MIN_STATES,
    max_states: int = 6,
    extra_edges: int = 3,
    words_per_state: int = 3,
    base_url: str = "http://testgen.test",
) -> SiteSpec:
    """Deterministically sample a whole site spec from ``seed``."""
    if num_pages < 1:
        raise ValueError("a generated site needs at least one page")
    rng = random.Random(seed)
    pages = tuple(
        generate_page(
            rng,
            seed=seed,
            page_id=page_id,
            min_states=min_states,
            max_states=max_states,
            extra_edges=extra_edges,
            words_per_state=words_per_state,
        )
        for page_id in range(num_pages)
    )
    return SiteSpec(seed=seed, base_url=base_url, pages=pages)
