"""Render a :class:`~repro.testgen.spec.SiteSpec` into a live server.

The generated application follows the SimTube pattern: each page inlines
its initial-state fragment (what a JavaScript-less browser sees) and
swaps the ``#content`` div over a single XHR-reaching script function
``fetchFragment`` — the page's one hot node.  Every byte served is a
pure function of the spec, so the server is trivially stateless and the
crawler's snapshot assumption (§4.3) holds by construction.

Two structural choices make the ground truth exact:

* the inlined initial fragment is byte-identical to the
  ``/fragment?...&s=0`` response, so an edge back to state 0 dedupes to
  the initial state instead of minting a near-duplicate;
* all events live inside ``#content`` (no static chrome events), so the
  events fired from a state are exactly the spec's out-edges.
"""

from __future__ import annotations

from repro.net.http import Request, Response, not_found
from repro.net.server import SimulatedServer
from repro.testgen.spec import PageSpec, SiteSpec

PAGE_SCRIPT_TEMPLATE = """
var booted = 0;
function fetchFragment(url) {{
    var req = new XMLHttpRequest();
    req.open("GET", url, true);
    req.send(null);
    return req.responseText;
}}
function go(s) {{
    document.getElementById("content").innerHTML =
        fetchFragment("/fragment?page={page_id}&s=" + s);
}}
function init() {{ booted = 1; }}
"""


class GeneratedSite(SimulatedServer):
    """Serves the pages and fragment endpoints of one generated spec."""

    def __init__(self, spec: SiteSpec) -> None:
        self.spec = spec
        self._by_path = {page.path: page for page in spec.pages}

    @property
    def base_url(self) -> str:
        return self.spec.base_url

    def all_urls(self) -> list[str]:
        return self.spec.all_urls()

    # -- server interface ------------------------------------------------------

    def handle(self, request: Request) -> Response:
        page = self._by_path.get(request.path)
        if page is not None:
            return Response(body=self.render_page(page))
        if request.path == "/fragment":
            return self._handle_fragment(request)
        return not_found(request.url)

    def _handle_fragment(self, request: Request) -> Response:
        try:
            page_id = int(request.query.get("page", ""))
            state = int(request.query.get("s", ""))
        except ValueError:
            return not_found(request.url)
        if not 0 <= page_id < len(self.spec.pages):
            return not_found(request.url)
        page = self.spec.pages[page_id]
        if not 0 <= state < page.num_states:
            return not_found(request.url)
        return Response(body=self.render_fragment(page, state))

    # -- rendering -------------------------------------------------------------

    def render_fragment(self, page: PageSpec, state: int) -> str:
        """One state's ``#content`` markup: terms plus nav events."""
        words = " ".join(page.words[state]) if page.words else ""
        nav = "".join(
            f'<li><a id="{t.element_id}" onclick="go({t.dst})">'
            f"visit {t.dst}</a></li>"
            for t in page.outgoing(state)
        )
        return (
            f"<h2>area {page.page_id} state {state}</h2>\n"
            f'<p class="terms">{page.marker_of(state)} {words}</p>\n'
            f'<ul id="nav">{nav}</ul>'
        )

    def render_page(self, page: PageSpec) -> str:
        script = PAGE_SCRIPT_TEMPLATE.format(page_id=page.page_id)
        return f"""<html>
<head><title>generated app {page.page_id}</title></head>
<body onload="init()">
<h1 id="page_title">generated app {page.page_id}</h1>
<div id="content">{self.render_fragment(page, 0)}</div>
<script type="text/javascript">{script}</script>
</body>
</html>"""


def build_site(spec: SiteSpec) -> GeneratedSite:
    """Convenience constructor mirroring ``generator.generate_site``."""
    return GeneratedSite(spec)
