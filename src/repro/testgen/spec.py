"""Transition-graph specs for generated AJAX applications.

A :class:`SiteSpec` is the *ground truth* a generated site is built
from: every page is a sampled directed graph whose nodes are AJAX
states and whose edges are click events fetching a state fragment over
``XMLHttpRequest``.  Because the HTML, the page script and the XHR
endpoints are all pure functions of the spec, the spec can answer — in
closed form — every question the conformance harness asks of a crawl:

* the exact reachable-state count per page (all states, by construction
  every sampled graph is spanning from state 0);
* the exact transition-edge set (no duplicate ``(src, dst)`` edges are
  sampled, so the recovered edge set must match bijectively);
* the searchable terms of every state (each state carries one globally
  unique *marker* term plus a few corpus words);
* the exact multiset of AJAX calls a basic crawl performs (one fetch
  per edge) and the exact set a hot-node crawl performs (one fetch per
  *distinct* fetch URL — the generator guarantees at least one state
  has in-degree >= 2, so the hot-node saving is strictly positive).

Specs serialize to JSON so a failing seed can be pinned in a bug
report and regenerated bit-identically.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path


@dataclass(frozen=True)
class TransitionSpec:
    """One sampled edge: a click on ``element_id`` in ``src`` loads ``dst``."""

    src: int
    dst: int
    #: DOM id of the anchor carrying the ``onclick`` handler.
    element_id: str

    def to_dict(self) -> dict:
        return {"src": self.src, "dst": self.dst, "element_id": self.element_id}

    @classmethod
    def from_dict(cls, data: dict) -> "TransitionSpec":
        return cls(src=data["src"], dst=data["dst"], element_id=data["element_id"])


@dataclass(frozen=True)
class PageSpec:
    """The ground-truth transition graph of one generated page."""

    page_id: int
    #: Request path of the page ("/app/<page_id>").
    path: str
    num_states: int
    transitions: tuple[TransitionSpec, ...]
    #: Globally unique, single-token marker term per state.
    markers: tuple[str, ...]
    #: Extra (shared, non-unique) corpus words per state.
    words: tuple[tuple[str, ...], ...] = field(default=())

    # -- oracles ---------------------------------------------------------------

    @property
    def edges(self) -> frozenset[tuple[int, int]]:
        """The expected ``(src, dst)`` transition set."""
        return frozenset((t.src, t.dst) for t in self.transitions)

    def outgoing(self, state: int) -> list[TransitionSpec]:
        """Out-edges of ``state`` in generation (= document) order."""
        return [t for t in self.transitions if t.src == state]

    def fetch_path(self, dst: int) -> str:
        """The XHR path the generated script uses to load state ``dst``."""
        return f"/fragment?page={self.page_id}&s={dst}"

    def expected_fetches(self) -> Counter:
        """Exact multiset of network AJAX calls of a basic (cache-less)
        breadth-first crawl: each state is explored once and each of its
        out-edges fires exactly one fetch of the destination fragment."""
        return Counter(self.fetch_path(t.dst) for t in self.transitions)

    def expected_unique_fetches(self) -> frozenset[str]:
        """Distinct fetch URLs — what a hot-node crawl pays for."""
        return frozenset(self.fetch_path(t.dst) for t in self.transitions)

    def expected_network_calls(self, use_hot_node: bool) -> int:
        """Exact AJAX-calls-on-the-wire count for either crawler mode."""
        if use_hot_node:
            return len(self.expected_unique_fetches())
        return len(self.transitions)

    def expected_cached_hits(self) -> int:
        """Exact hot-node cache hits: repeat fetches of a seen URL."""
        return len(self.transitions) - len(self.expected_unique_fetches())

    def in_degree(self, state: int) -> int:
        return sum(1 for t in self.transitions if t.dst == state)

    def marker_of(self, state: int) -> str:
        return self.markers[state]

    def state_of_marker(self, marker: str) -> int:
        return self.markers.index(marker)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "page_id": self.page_id,
            "path": self.path,
            "num_states": self.num_states,
            "transitions": [t.to_dict() for t in self.transitions],
            "markers": list(self.markers),
            "words": [list(ws) for ws in self.words],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PageSpec":
        return cls(
            page_id=data["page_id"],
            path=data["path"],
            num_states=data["num_states"],
            transitions=tuple(
                TransitionSpec.from_dict(t) for t in data["transitions"]
            ),
            markers=tuple(data["markers"]),
            words=tuple(tuple(ws) for ws in data["words"]),
        )


@dataclass(frozen=True)
class SiteSpec:
    """A whole generated site: one or more independent AJAX pages."""

    seed: int
    base_url: str
    pages: tuple[PageSpec, ...]

    def page_url(self, page_id: int) -> str:
        return f"{self.base_url}{self.pages[page_id].path}"

    def all_urls(self) -> list[str]:
        return [self.page_url(p.page_id) for p in self.pages]

    def page_for_url(self, url: str) -> PageSpec:
        for page in self.pages:
            if self.page_url(page.page_id) == url:
                return page
        raise KeyError(f"no generated page serves {url!r}")

    @property
    def total_states(self) -> int:
        return sum(p.num_states for p in self.pages)

    @property
    def total_transitions(self) -> int:
        return sum(len(p.transitions) for p in self.pages)

    #: The crawl cap every conformance crawl must run with so that no
    #: genuine state is discarded (cap = initial + additional).
    @property
    def max_additional_states_needed(self) -> int:
        return max(p.num_states for p in self.pages) - 1

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "base_url": self.base_url,
            "pages": [p.to_dict() for p in self.pages],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SiteSpec":
        return cls(
            seed=data["seed"],
            base_url=data["base_url"],
            pages=tuple(PageSpec.from_dict(p) for p in data["pages"]),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )

    @classmethod
    def load(cls, path: str | Path) -> "SiteSpec":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
