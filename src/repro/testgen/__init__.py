"""Synthetic-site generation with ground-truth oracles (the standing
correctness gate: generate → crawl → compare against the spec).

* :mod:`repro.testgen.spec` — transition-graph specs and their oracles;
* :mod:`repro.testgen.generator` — seeded sampling of site specs;
* :mod:`repro.testgen.site` — specs rendered as live simulated servers;
* :mod:`repro.testgen.conformance` — differential/metamorphic checks;
* :mod:`repro.testgen.fuzz` — substrate crash-fuzzing with shrinking;
* :mod:`repro.testgen.noisy` — noisy-twin sites with volatile regions
  and closed-form near-duplicate collapse oracles.
"""

from repro.testgen.conformance import (
    CHECK_NAMES,
    CheckResult,
    ConformanceReport,
    conformance_config,
    crawl_generated,
    recover_graph,
    run_conformance,
    run_corpus,
    spec_for_seed,
)
from repro.testgen.corpus import (
    CORPUS_STATES_PER_PAGE,
    corpus_models,
    corpus_spec,
    state_text,
)
from repro.testgen.fuzz import (
    CrashReport,
    FuzzCase,
    FuzzSummary,
    fuzz_corpus,
    generate_case,
    run_case,
    shrink_case,
    shrink_text,
)
from repro.testgen.generator import MIN_STATES, WORD_CORPUS, generate_page, generate_site
from repro.testgen.noisy import (
    NEAR_DUP_THRESHOLD,
    NOISY_WORD_CORPUS,
    VOLATILE_MARKER_SUBSTRINGS,
    NoisyGeneratedSite,
    NoisySiteSpec,
    build_noisy_site,
    generate_noisy_site,
)
from repro.testgen.site import GeneratedSite, build_site
from repro.testgen.spec import PageSpec, SiteSpec, TransitionSpec

__all__ = [
    "CHECK_NAMES",
    "CheckResult",
    "ConformanceReport",
    "CrashReport",
    "FuzzCase",
    "FuzzSummary",
    "GeneratedSite",
    "MIN_STATES",
    "NEAR_DUP_THRESHOLD",
    "NOISY_WORD_CORPUS",
    "NoisyGeneratedSite",
    "NoisySiteSpec",
    "VOLATILE_MARKER_SUBSTRINGS",
    "PageSpec",
    "SiteSpec",
    "TransitionSpec",
    "WORD_CORPUS",
    "CORPUS_STATES_PER_PAGE",
    "build_noisy_site",
    "build_site",
    "conformance_config",
    "corpus_models",
    "corpus_spec",
    "crawl_generated",
    "state_text",
    "fuzz_corpus",
    "generate_case",
    "generate_noisy_site",
    "generate_page",
    "generate_site",
    "recover_graph",
    "run_case",
    "run_conformance",
    "run_corpus",
    "shrink_case",
    "shrink_text",
    "spec_for_seed",
]
