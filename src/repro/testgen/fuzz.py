"""Crash-fuzzing for the language substrate, with seed shrinking.

The conformance checks prove the crawlers agree with the spec; this
module attacks the layer *below* them: the JavaScript lexer → parser →
interpreter pipeline and the DOM parser.  Both are total functions over
arbitrary text by contract — any input may be *rejected* (a
:class:`~repro.errors.ReproError` subclass: ``JsSyntaxError``,
``JsRuntimeError``, ``HtmlParseError``, ...) but must never escape with
a raw Python exception (``IndexError``, ``RecursionError``, ...).  A
raw exception is a **crash**.

Each fuzz case is derived from a single integer seed, in one of four
kinds:

* ``js`` — a structured program sampled from a small grammar of the
  supported dialect (mostly valid; exercises the interpreter);
* ``js-mutated`` — the same, then corrupted by byte-level mutations
  (exercises lexer/parser error paths);
* ``markup`` — a nested tag soup with event attributes (exercises the
  DOM parser's recovery);
* ``markup-mutated`` — the same, corrupted.

Failures shrink: :func:`shrink_case` greedily deletes line and
character chunks while the same exception type still reproduces,
yielding a minimal repro to pin in a regression test.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.dom.parser import parse_document
from repro.errors import ReproError
from repro.js.interpreter import Interpreter
from repro.js.lexer import tokenize
from repro.js.parser import parse_program

#: Case kinds, chosen round-robin by seed so every pipeline is hit
#: uniformly across any contiguous seed range.
CASE_KINDS = ("js", "js-mutated", "markup", "markup-mutated")

#: Interpreter step budget per case: small enough that sampled ``while``
#: loops terminate instantly via JsStepLimitError (an allowed outcome).
FUZZ_MAX_STEPS = 5_000

_IDENTIFIERS = ("a", "b", "c", "d", "acc", "item", "total")
_STRINGS = ("alpha", "beta", "gamma", "delta", "")
_BINARY_OPS = ("+", "-", "*", "/", "%", "<", ">", "<=", ">=", "==", "!=", "&&", "||")
_TAGS = ("div", "span", "ul", "li", "a", "p", "h1", "table", "tr", "td", "em")
_ATTRS = ("id", "class", "href", "onclick", "onmouseover", "title")
_MARKUP_NOISE = ("<", ">", "</", "<!--", "-->", "&amp;", "&", '"', "='", "<x", "< div>")


@dataclass(frozen=True)
class FuzzCase:
    """One generated input for one pipeline."""

    kind: str
    seed: int
    text: str


@dataclass(frozen=True)
class CrashReport:
    """A raw (non-``ReproError``) exception escaping a pipeline."""

    case: FuzzCase
    exc_type: str
    message: str

    def describe(self) -> str:
        return (
            f"seed {self.case.seed} [{self.case.kind}]: "
            f"{self.exc_type}: {self.message} "
            f"(input {len(self.case.text)} chars)"
        )


@dataclass
class FuzzSummary:
    """Outcome of a corpus run."""

    cases_run: int = 0
    #: Rejections per allowed exception type (diagnostic only).
    rejections: Counter = field(default_factory=Counter)
    crashes: list[CrashReport] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.crashes


# -- case generation ---------------------------------------------------------------


def _gen_expression(rng: random.Random, depth: int = 0) -> str:
    choices = ["number", "string", "identifier"]
    if depth < 3:
        choices += ["binary", "binary", "call", "array", "index", "unary"]
    kind = rng.choice(choices)
    if kind == "number":
        return str(rng.randint(-9, 99))
    if kind == "string":
        return f'"{rng.choice(_STRINGS)}"'
    if kind == "identifier":
        return rng.choice(_IDENTIFIERS)
    if kind == "unary":
        return f"-({_gen_expression(rng, depth + 1)})"
    if kind == "binary":
        op = rng.choice(_BINARY_OPS)
        left = _gen_expression(rng, depth + 1)
        right = _gen_expression(rng, depth + 1)
        return f"({left} {op} {right})"
    if kind == "call":
        args = ", ".join(
            _gen_expression(rng, depth + 1) for _ in range(rng.randint(0, 2))
        )
        return f"fn{rng.randint(0, 2)}({args})"
    if kind == "array":
        items = ", ".join(
            _gen_expression(rng, depth + 1) for _ in range(rng.randint(0, 3))
        )
        return f"[{items}]"
    # index
    return f"[{_gen_expression(rng, depth + 1)}][{rng.randint(0, 4)}]"


def _gen_statement(rng: random.Random, depth: int = 0) -> str:
    choices = ["var", "assign", "expr", "return"]
    if depth < 2:
        choices += ["if", "while", "function"]
    kind = rng.choice(choices)
    if kind == "var":
        return f"var {rng.choice(_IDENTIFIERS)} = {_gen_expression(rng)};"
    if kind == "assign":
        return f"{rng.choice(_IDENTIFIERS)} = {_gen_expression(rng)};"
    if kind == "expr":
        return f"{_gen_expression(rng)};"
    if kind == "return":
        return f"return {_gen_expression(rng)};"
    if kind == "if":
        body = _gen_statement(rng, depth + 1)
        alt = _gen_statement(rng, depth + 1) if rng.random() < 0.4 else ""
        text = f"if ({_gen_expression(rng)}) {{ {body} }}"
        return text + (f" else {{ {alt} }}" if alt else "")
    if kind == "while":
        counter = rng.choice(_IDENTIFIERS)
        body = _gen_statement(rng, depth + 1)
        return (
            f"var {counter} = 0; "
            f"while ({counter} < {rng.randint(1, 6)}) "
            f"{{ {counter} = {counter} + 1; {body} }}"
        )
    # function declaration + immediate call
    name = f"fn{rng.randint(0, 2)}"
    params = ", ".join(rng.sample(_IDENTIFIERS, k=rng.randint(0, 2)))
    body = _gen_statement(rng, depth + 1)
    return f"function {name}({params}) {{ {body} }} {name}();"


def _gen_program(rng: random.Random) -> str:
    return "\n".join(_gen_statement(rng) for _ in range(rng.randint(1, 8)))


def _gen_markup(rng: random.Random) -> str:
    def element(depth: int) -> str:
        tag = rng.choice(_TAGS)
        attrs = ""
        for _ in range(rng.randint(0, 2)):
            name = rng.choice(_ATTRS)
            value = rng.choice(("x", "go(1)", "nav main", "", "a&b"))
            attrs += f' {name}="{value}"'
        if depth >= 3 or rng.random() < 0.3:
            return f"<{tag}{attrs}>text{rng.randint(0, 9)}</{tag}>"
        inner = "".join(element(depth + 1) for _ in range(rng.randint(1, 3)))
        return f"<{tag}{attrs}>{inner}</{tag}>"

    body = "".join(element(0) for _ in range(rng.randint(1, 4)))
    return f"<html><head><title>fuzz</title></head><body>{body}</body></html>"


def mutate_text(rng: random.Random, text: str, mutations: int = 4) -> str:
    """Corrupt ``text`` with random deletions, duplications and noise."""
    for _ in range(rng.randint(1, mutations)):
        if not text:
            break
        op = rng.choice(("delete", "duplicate", "insert", "truncate"))
        i = rng.randrange(len(text))
        j = min(len(text), i + rng.randint(1, 12))
        if op == "delete":
            text = text[:i] + text[j:]
        elif op == "duplicate":
            text = text[:j] + text[i:j] + text[j:]
        elif op == "insert":
            noise = rng.choice(_MARKUP_NOISE + ('"', "(", "}", ";", "\\", "\x00"))
            text = text[:i] + noise + text[i:]
        else:  # truncate
            text = text[:i]
    return text


def generate_case(seed: int) -> FuzzCase:
    """The fuzz input of ``seed`` — fully determined by it."""
    rng = random.Random(seed)
    kind = CASE_KINDS[seed % len(CASE_KINDS)]
    if kind == "js":
        text = _gen_program(rng)
    elif kind == "js-mutated":
        text = mutate_text(rng, _gen_program(rng))
    elif kind == "markup":
        text = _gen_markup(rng)
    else:
        text = mutate_text(rng, _gen_markup(rng))
    return FuzzCase(kind=kind, seed=seed, text=text)


# -- execution ---------------------------------------------------------------------


def _run_js(text: str) -> None:
    tokenize(text)
    program = parse_program(text)
    Interpreter(max_steps=FUZZ_MAX_STEPS).execute_program(program)


def _run_markup(text: str) -> None:
    parse_document(text, url="http://fuzz.test/")


def pipeline_for(kind: str) -> Callable[[str], None]:
    if kind.startswith("js"):
        return _run_js
    if kind.startswith("markup"):
        return _run_markup
    raise ValueError(f"unknown fuzz kind {kind!r}")


def run_case(case: FuzzCase, summary: Optional[FuzzSummary] = None) -> Optional[CrashReport]:
    """Feed one case through its pipeline; report a crash, if any."""
    if summary is not None:
        summary.cases_run += 1
    try:
        pipeline_for(case.kind)(case.text)
    except ReproError as exc:
        # Clean rejection — the contract the fuzzer enforces.
        if summary is not None:
            summary.rejections[type(exc).__name__] += 1
        return None
    except Exception as exc:  # noqa: BLE001 - any escape is the finding
        report = CrashReport(
            case=case, exc_type=type(exc).__name__, message=str(exc)
        )
        if summary is not None:
            summary.crashes.append(report)
        return report
    return None


def fuzz_corpus(seeds) -> FuzzSummary:
    """Run every seed's case; collect rejections and crashes."""
    summary = FuzzSummary()
    for seed in seeds:
        run_case(generate_case(seed), summary)
    return summary


# -- shrinking ---------------------------------------------------------------------


def shrink_text(text: str, still_fails: Callable[[str], bool]) -> str:
    """Greedy delta-debugging: drop line then character chunks while
    ``still_fails`` keeps returning True.  Chunk sizes halve from half
    the input down to single elements, restarting after any success."""
    for split in ("\n", None):
        parts = text.split(split) if split else list(text)
        chunk = max(1, len(parts) // 2)
        while chunk >= 1:
            i, shrunk = 0, False
            while i < len(parts):
                candidate_parts = parts[:i] + parts[i + chunk :]
                joiner = split if split else ""
                candidate = joiner.join(candidate_parts)
                if candidate != text and still_fails(candidate):
                    parts = candidate_parts
                    text = candidate
                    shrunk = True
                else:
                    i += chunk
            chunk = chunk // 2 if not shrunk else max(1, chunk // 2)
        text = (split if split else "").join(parts)
    return text


def shrink_case(report: CrashReport) -> FuzzCase:
    """Minimal input (same kind, same exception type) for a crash."""
    pipeline = pipeline_for(report.case.kind)

    def still_fails(candidate: str) -> bool:
        try:
            pipeline(candidate)
        except ReproError:
            return False
        except Exception as exc:  # noqa: BLE001 - reproduction probe
            return type(exc).__name__ == report.exc_type
        return False

    minimal = shrink_text(report.case.text, still_fails)
    return FuzzCase(kind=report.case.kind, seed=report.case.seed, text=minimal)
