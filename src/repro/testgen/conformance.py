"""Differential / metamorphic conformance checks over generated sites.

Every check crawls a :class:`~repro.testgen.spec.SiteSpec`'s generated
application and compares the outcome against the spec's closed-form
ground truth, or against another crawler variant that must agree:

* ``ground_truth`` — a basic (cache-less) crawl recovers *exactly* the
  spec's reachable states, marker terms, transition edges and AJAX-call
  multiset; nothing is quarantined, capped or failed.
* ``hotnode_parity`` — hot-node vs basic: identical state hashes and
  edges, exact cache accounting, and *strictly fewer* network calls.
* ``incremental_parity`` — Merkle incremental hashing vs the full
  rehash baseline: byte-identical state hashes, identical models.
* ``parallel_parity`` — a single ``SimpleAjaxCrawler`` run vs an
  ``MPAjaxCrawler`` partitioned run: the merged report and models must
  equal the single-run ones.
* ``backend_parity`` — the same ``MPAjaxCrawler`` partitions on the
  simulated engine vs the real-thread engine: merged report, model
  list (order included), network counters and search results must be
  identical; only scheduling/wall-clock fields may differ.
* ``search_consistency`` — an index built over the crawled models
  answers every per-state marker query with exactly that state, and
  corpus-word result counts match the spec's term placement.
* ``index_parity`` — the on-disk ``SegmentedIndex`` (delta+varint
  posting blocks, block-max skipping, LSM compaction) vs the in-memory
  ``InvertedFile`` over the same crawled models: byte-identical state
  registries, postings, tf/idf statistics and search results — before
  and after incremental update + full compaction.
* ``near_dup_parity`` — the banded-LSH collapse layer against the
  noisy-twin generator's closed-form oracles: with
  ``near_dup_threshold`` set, a noisy crawl recovers exactly the
  logical state count, twin→canonical mapping, variant counts and
  volatile-region masks (identically across execution backends, with
  zero false merges); with it unset, the same noisy site explodes to
  exactly the breadth-first unrolling the oracle predicts, and a
  standard-site crawl emits no dedup events, metrics or annotations —
  the dedup-off path is inert.

Checks never raise on conformance violations: each returns a
:class:`CheckResult` whose failures pinpoint seed + page + quantity, so
a 50-seed corpus run reports every divergence at once.
"""

from __future__ import annotations

import tempfile
from collections import Counter
from dataclasses import dataclass, field
from math import isclose
from typing import Callable, Optional

from repro.clock import CostModel, SimClock
from repro.crawler import AjaxCrawler, CrawlerConfig
from repro.model import ApplicationModel
from repro.obs import STATE_COLLAPSED
from repro.obs.recorder import Recorder
from repro.parallel import MPAjaxCrawler, SimpleAjaxCrawler
from repro.search import InvertedFile, SearchEngine, SegmentedIndex
from repro.testgen.generator import generate_site
from repro.testgen.noisy import (
    NEAR_DUP_THRESHOLD,
    NoisyGeneratedSite,
    NoisySiteSpec,
    generate_noisy_site,
)
from repro.testgen.site import GeneratedSite
from repro.testgen.spec import PageSpec, SiteSpec

#: All checks, in the order ``run_conformance`` executes them.
CHECK_NAMES = (
    "ground_truth",
    "hotnode_parity",
    "incremental_parity",
    "parallel_parity",
    "backend_parity",
    "search_consistency",
    "index_parity",
    "near_dup_parity",
)


@dataclass
class CheckResult:
    """Outcome of one conformance check on one spec."""

    name: str
    failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def expect(self, condition: bool, message: str) -> None:
        if not condition:
            self.failures.append(message)


@dataclass
class ConformanceReport:
    """All check outcomes for one generated spec."""

    spec: SiteSpec
    results: list[CheckResult] = field(default_factory=list)

    @property
    def seed(self) -> int:
        return self.spec.seed

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def failures(self) -> list[str]:
        return [
            f"[seed {self.seed}] {result.name}: {failure}"
            for result in self.results
            for failure in result.failures
        ]

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        checks = " ".join(
            f"{result.name}={'ok' if result.passed else 'FAIL'}"
            for result in self.results
        )
        return (
            f"seed {self.seed}: {verdict} "
            f"({self.spec.total_states} states, "
            f"{self.spec.total_transitions} edges, "
            f"{len(self.spec.pages)} page(s)) {checks}"
        )


def conformance_config(
    spec: SiteSpec,
    use_hot_node: bool = True,
    incremental_hashing: bool = True,
) -> CrawlerConfig:
    """The crawl limits a conformance crawl must run under: the state
    cap admits every genuine state, everything else stays at defaults."""
    return CrawlerConfig(
        max_additional_states=spec.max_additional_states_needed,
        use_hot_node=use_hot_node,
        incremental_hashing=incremental_hashing,
    )


def _cost_model() -> CostModel:
    # Zero jitter: cross-variant time comparisons must be exact.
    return CostModel(network_jitter=0.0)


def crawl_generated(
    spec: SiteSpec,
    use_hot_node: bool = True,
    incremental_hashing: bool = True,
):
    """Crawl every page of the generated site with a fresh crawler.

    Returns ``(crawler, CrawlResult)`` — the crawler is handed back for
    its network stats (the AJAX-call oracles read them).
    """
    crawler = AjaxCrawler(
        GeneratedSite(spec),
        conformance_config(
            spec, use_hot_node=use_hot_node, incremental_hashing=incremental_hashing
        ),
        clock=SimClock(),
        cost_model=_cost_model(),
    )
    return crawler, crawler.crawl(spec.all_urls())


# -- recovered-graph mapping -----------------------------------------------------


@dataclass
class RecoveredGraph:
    """One crawled model mapped back onto its spec page via markers."""

    page: PageSpec
    model: ApplicationModel
    #: model state_id -> spec state index.
    mapping: dict[str, int]
    #: Problems encountered while mapping (ambiguous/unknown states).
    problems: list[str] = field(default_factory=list)

    @property
    def edges(self) -> set[tuple[int, int]]:
        return {
            (self.mapping[t.from_state], self.mapping[t.to_state])
            for t in self.model.transitions()
            if t.from_state in self.mapping and t.to_state in self.mapping
        }

    @property
    def states(self) -> set[int]:
        return set(self.mapping.values())


def recover_graph(page: PageSpec, model: ApplicationModel) -> RecoveredGraph:
    """Identify each crawled state by the unique marker it contains."""
    mapping: dict[str, int] = {}
    problems: list[str] = []
    for state in model.states():
        hits = [
            index
            for index, marker in enumerate(page.markers)
            if marker in state.text
        ]
        if len(hits) != 1:
            problems.append(
                f"state {state.state_id} matches {len(hits)} markers "
                f"(text={state.text[:60]!r})"
            )
            continue
        mapping[state.state_id] = hits[0]
    return RecoveredGraph(page=page, model=model, mapping=mapping, problems=problems)


def _model_fingerprints(models: list[ApplicationModel]) -> dict[str, tuple]:
    """Order-insensitive identity of each crawled model, keyed by URL."""
    fingerprints: dict[str, tuple] = {}
    for model in models:
        hashes = tuple(sorted(state.content_hash for state in model.states()))
        edges = tuple(
            sorted(
                (
                    model.get_state(t.from_state).content_hash,
                    model.get_state(t.to_state).content_hash,
                    t.event.source,
                    t.event.trigger,
                )
                for t in model.transitions()
            )
        )
        fingerprints[model.url] = (hashes, edges)
    return fingerprints


def _fragment_fetches(crawler: AjaxCrawler, spec: SiteSpec) -> Counter:
    """Multiset of fragment requests that actually hit the network."""
    fetches: Counter = Counter()
    for url, count in crawler.stats.requests_by_url.items():
        path = url.replace(spec.base_url, "", 1)
        if path.startswith("/fragment?"):
            fetches[path] += count
    return fetches


# -- individual checks ------------------------------------------------------------


def check_ground_truth(spec: SiteSpec) -> CheckResult:
    """A basic cache-less crawl must recover the spec exactly."""
    result = CheckResult("ground_truth")
    crawler, crawl = crawl_generated(spec, use_hot_node=False)
    result.expect(not crawl.failed_urls, f"failed urls: {crawl.failed_urls}")
    result.expect(
        crawl.report.total_events_quarantined == 0,
        f"{crawl.report.total_events_quarantined} events quarantined",
    )
    result.expect(
        crawl.report.total_states_capped == 0,
        f"{crawl.report.total_states_capped} states hit the cap",
    )
    by_url = {model.url: model for model in crawl.models}
    for page in spec.pages:
        url = spec.page_url(page.page_id)
        model = by_url.get(url)
        if model is None:
            result.expect(False, f"page {page.page_id}: no model crawled")
            continue
        recovered = recover_graph(page, model)
        for problem in recovered.problems:
            result.expect(False, f"page {page.page_id}: {problem}")
        result.expect(
            model.num_states == page.num_states,
            f"page {page.page_id}: {model.num_states} states crawled, "
            f"{page.num_states} in spec",
        )
        result.expect(
            recovered.states == set(range(page.num_states)),
            f"page {page.page_id}: recovered states {sorted(recovered.states)} "
            f"!= spec 0..{page.num_states - 1}",
        )
        result.expect(
            recovered.edges == set(page.edges),
            f"page {page.page_id}: recovered edges {sorted(recovered.edges)} "
            f"!= spec {sorted(page.edges)}",
        )
        result.expect(
            model.num_transitions == len(page.transitions),
            f"page {page.page_id}: {model.num_transitions} transitions recorded, "
            f"{len(page.transitions)} in spec",
        )
    expected_fetches = Counter()
    for page in spec.pages:
        expected_fetches.update(page.expected_fetches())
    actual_fetches = _fragment_fetches(crawler, spec)
    result.expect(
        actual_fetches == expected_fetches,
        f"AJAX multiset mismatch: extra={actual_fetches - expected_fetches}, "
        f"missing={expected_fetches - actual_fetches}",
    )
    return result


def check_hotnode_parity(spec: SiteSpec) -> CheckResult:
    """Hot-node crawl: same states/edges, strictly fewer network calls."""
    result = CheckResult("hotnode_parity")
    basic_crawler, basic = crawl_generated(spec, use_hot_node=False)
    hot_crawler, hot = crawl_generated(spec, use_hot_node=True)
    result.expect(
        _model_fingerprints(basic.models) == _model_fingerprints(hot.models),
        "hot-node crawl produced different models than the basic crawl",
    )
    expected_basic = sum(p.expected_network_calls(False) for p in spec.pages)
    expected_hot = sum(p.expected_network_calls(True) for p in spec.pages)
    expected_hits = sum(p.expected_cached_hits() for p in spec.pages)
    result.expect(
        basic.report.total_ajax_calls == expected_basic,
        f"basic crawl made {basic.report.total_ajax_calls} AJAX calls, "
        f"spec predicts {expected_basic}",
    )
    result.expect(
        hot.report.total_ajax_calls == expected_hot,
        f"hot-node crawl made {hot.report.total_ajax_calls} AJAX calls, "
        f"spec predicts {expected_hot}",
    )
    result.expect(
        hot.report.total_cached_hits == expected_hits,
        f"hot-node crawl hit cache {hot.report.total_cached_hits} times, "
        f"spec predicts {expected_hits}",
    )
    result.expect(
        hot.report.total_ajax_calls < basic.report.total_ajax_calls,
        "hot-node crawl did not make strictly fewer network calls "
        f"({hot.report.total_ajax_calls} vs {basic.report.total_ajax_calls})",
    )
    # Hot and basic mode agree on the distinct fragments fetched.
    hot_fetches = _fragment_fetches(hot_crawler, spec)
    basic_fetches = _fragment_fetches(basic_crawler, spec)
    result.expect(
        set(hot_fetches) == set(basic_fetches),
        "hot-node crawl fetched a different set of fragments",
    )
    result.expect(
        all(count == 1 for count in hot_fetches.values()),
        f"hot-node crawl re-fetched cached fragments: {hot_fetches}",
    )
    return result


def check_incremental_parity(spec: SiteSpec) -> CheckResult:
    """Merkle incremental hashing == full-rehash baseline, bit for bit."""
    result = CheckResult("incremental_parity")
    _, incremental = crawl_generated(spec, incremental_hashing=True)
    _, full = crawl_generated(spec, incremental_hashing=False)
    inc_prints = _model_fingerprints(incremental.models)
    full_prints = _model_fingerprints(full.models)
    result.expect(
        set(inc_prints) == set(full_prints),
        "hashing modes crawled different URL sets",
    )
    for url in inc_prints:
        if url not in full_prints:
            continue
        result.expect(
            inc_prints[url][0] == full_prints[url][0],
            f"{url}: state hashes diverged between hashing modes",
        )
        result.expect(
            inc_prints[url][1] == full_prints[url][1],
            f"{url}: transitions diverged between hashing modes",
        )
    result.expect(
        incremental.report.total_states == full.report.total_states,
        f"state totals diverged: {incremental.report.total_states} vs "
        f"{full.report.total_states}",
    )
    result.expect(
        incremental.report.total_events == full.report.total_events,
        f"event totals diverged: {incremental.report.total_events} vs "
        f"{full.report.total_events}",
    )
    return result


def _partition(urls: list[str], count: int) -> list[list[str]]:
    """Contiguous partitions, as the URLPartitioner would produce."""
    count = max(1, min(count, len(urls)))
    size = -(-len(urls) // count)
    return [urls[i : i + size] for i in range(0, len(urls), size)]


def check_parallel_parity(
    spec: SiteSpec, num_partitions: int = 2, num_proc_lines: int = 2
) -> CheckResult:
    """Merged MPAjaxCrawler report == single SimpleAjaxCrawler report."""
    result = CheckResult("parallel_parity")
    config = conformance_config(spec)
    urls = spec.all_urls()
    single_result, single_summary = SimpleAjaxCrawler(
        GeneratedSite(spec), config, cost_model=_cost_model()
    ).crawl_urls(urls, partition=0)
    parallel = MPAjaxCrawler(
        GeneratedSite(spec),
        num_proc_lines=num_proc_lines,
        config=config,
        cost_model=_cost_model(),
    ).run_simulated(_partition(urls, num_partitions))
    merged = parallel.result.report
    single = single_result.report
    for quantity in (
        "num_pages",
        "total_states",
        "total_events",
        "total_ajax_calls",
        "total_cached_hits",
    ):
        result.expect(
            getattr(merged, quantity) == getattr(single, quantity),
            f"{quantity}: merged {getattr(merged, quantity)} != "
            f"single {getattr(single, quantity)}",
        )
    result.expect(
        parallel.total_failed_pages == 0 and not single_result.failed_urls,
        "a fault-free generated crawl reported page failures",
    )
    result.expect(
        _model_fingerprints(parallel.result.models)
        == _model_fingerprints(single_result.models),
        "merged parallel models differ from the single-run models",
    )
    result.expect(
        isclose(
            merged.total_time_ms, single.total_time_ms, rel_tol=1e-9, abs_tol=1e-6
        ),
        f"virtual crawl time diverged: merged {merged.total_time_ms} vs "
        f"single {single.total_time_ms}",
    )
    result.expect(
        parallel.stats.ajax_calls == single_summary.network.ajax_calls,
        f"merged network stats diverged: {parallel.stats.ajax_calls} AJAX "
        f"calls vs {single_summary.network.ajax_calls}",
    )
    return result


def check_backend_parity(
    spec: SiteSpec, num_partitions: int = 2, num_workers: int = 2
) -> CheckResult:
    """Simulated vs real-thread execution backends must agree exactly.

    Both engines crawl the same partitions through the same
    ``MPAjaxCrawler``; everything that describes the *crawl* — merged
    report (virtual time included), per-model states and transitions,
    model order, network counters, search answers — must be identical.
    Wall-clock and scheduling fields (``makespan_ms``, ``wall_time_ms``,
    ``worker_wall_ms``, ``partitions_stolen``, ``line_finish_ms``,
    ``partition_durations_ms``) describe the engine and are exempt.
    """
    result = CheckResult("backend_parity")
    partitions = _partition(spec.all_urls(), num_partitions)

    def controller() -> MPAjaxCrawler:
        return MPAjaxCrawler(
            GeneratedSite(spec),
            num_proc_lines=num_workers,
            config=conformance_config(spec),
            cost_model=_cost_model(),
        )

    simulated = controller().run(partitions, backend="simulated")
    threaded = controller().run(partitions, backend="threads")
    result.expect(simulated.backend == "simulated", "simulated run mistagged")
    result.expect(threaded.backend == "threads", "threaded run mistagged")
    sim_report = simulated.result.report
    thr_report = threaded.result.report
    for quantity in (
        "num_pages",
        "total_states",
        "total_events",
        "total_ajax_calls",
        "total_cached_hits",
        "total_states_capped",
        "total_events_quarantined",
    ):
        result.expect(
            getattr(sim_report, quantity) == getattr(thr_report, quantity),
            f"{quantity}: simulated {getattr(sim_report, quantity)} != "
            f"threads {getattr(thr_report, quantity)}",
        )
    result.expect(
        sim_report.total_time_ms == thr_report.total_time_ms,
        f"virtual crawl time diverged: simulated {sim_report.total_time_ms} "
        f"vs threads {thr_report.total_time_ms}",
    )
    result.expect(
        simulated.total_failed_pages == 0 and threaded.total_failed_pages == 0,
        "a fault-free generated crawl reported page failures",
    )
    sim_urls = [model.url for model in simulated.result.models]
    thr_urls = [model.url for model in threaded.result.models]
    result.expect(
        sim_urls == thr_urls,
        f"merged model order diverged: {sim_urls} vs {thr_urls}",
    )
    sim_prints = _model_fingerprints(simulated.result.models)
    thr_prints = _model_fingerprints(threaded.result.models)
    for url in sim_prints:
        result.expect(
            sim_prints[url] == thr_prints.get(url),
            f"{url}: models diverged between backends",
        )
    result.expect(
        simulated.stats.registry.snapshot() == threaded.stats.registry.snapshot(),
        "merged network metrics diverged between backends",
    )
    result.expect(
        sorted(simulated.partition_results) == sorted(threaded.partition_results),
        "backends produced different partition numbers",
    )
    # The crawled corpus answers queries identically whichever engine
    # produced it: every per-state marker resolves to the same state.
    sim_engine = SearchEngine.build(simulated.result.models)
    thr_engine = SearchEngine.build(threaded.result.models)
    for page in spec.pages:
        for marker in page.markers:
            sim_hits = [
                (hit.uri, hit.state_id, hit.score) for hit in sim_engine.search(marker)
            ]
            thr_hits = [
                (hit.uri, hit.state_id, hit.score) for hit in thr_engine.search(marker)
            ]
            result.expect(
                sim_hits == thr_hits,
                f"marker {marker!r}: search results diverged "
                f"({sim_hits} vs {thr_hits})",
            )
    return result


def check_search_consistency(spec: SiteSpec) -> CheckResult:
    """Indexed search results must match the spec's per-state terms."""
    result = CheckResult("search_consistency")
    _, crawl = crawl_generated(spec)
    engine = SearchEngine.build(crawl.models)
    by_url = {model.url: model for model in crawl.models}
    for page in spec.pages:
        url = spec.page_url(page.page_id)
        model = by_url.get(url)
        if model is None:
            result.expect(False, f"page {page.page_id}: no model to index")
            continue
        for state_index, marker in enumerate(page.markers):
            hits = engine.search(marker)
            if len(hits) != 1:
                result.expect(
                    False,
                    f"marker {marker!r} returned {len(hits)} results, expected 1",
                )
                continue
            hit = hits[0]
            result.expect(
                hit.uri == url,
                f"marker {marker!r} resolved to {hit.uri}, expected {url}",
            )
            state_text = model.get_state(hit.state_id).text
            result.expect(
                marker in state_text,
                f"marker {marker!r} hit state {hit.state_id} whose text "
                "does not contain it",
            )
    # Non-unique corpus words: result counts equal spec term placement.
    word_truth: Counter = Counter()
    for page in spec.pages:
        for state_words in page.words:
            for word in set(state_words):
                word_truth[word] += 1
    for word, expected_count in sorted(word_truth.items()):
        actual = engine.result_count(word)
        result.expect(
            actual == expected_count,
            f"word {word!r}: {actual} results, spec places it in "
            f"{expected_count} states",
        )
    return result


def _compare_indexes(
    result: CheckResult, memory: InvertedFile, disk: SegmentedIndex, label: str
) -> None:
    """Assert the two backends are observationally identical."""
    result.expect(
        disk.states() == memory.states(),
        f"{label}: state registries diverge "
        f"({disk.num_states} vs {memory.num_states} states)",
    )
    result.expect(
        disk.terms() == memory.terms(),
        f"{label}: vocabularies diverge "
        f"({disk.vocabulary_size} vs {memory.vocabulary_size} terms)",
    )
    for term in sorted(memory.terms()):
        result.expect(
            disk.postings(term) == memory.postings(term),
            f"{label}: postings of {term!r} diverge",
        )
        result.expect(
            disk.document_frequency(term) == memory.document_frequency(term),
            f"{label}: df of {term!r} diverges",
        )
        result.expect(
            disk.idf(term) == memory.idf(term),
            f"{label}: idf of {term!r} diverges "
            f"({disk.idf(term)!r} vs {memory.idf(term)!r})",
        )
    for uri, state_id in memory.states():
        result.expect(
            disk.state_length(uri, state_id) == memory.state_length(uri, state_id),
            f"{label}: length of ({uri}, {state_id}) diverges",
        )
        result.expect(
            disk.state_depth(uri, state_id) == memory.state_depth(uri, state_id),
            f"{label}: depth of ({uri}, {state_id}) diverges",
        )


def check_index_parity(spec: SiteSpec) -> CheckResult:
    """On-disk segmented index == in-memory inverted file, bit for bit.

    The segmented index is built with a tiny flush threshold and block
    size so even small specs exercise multiple segments, multiple
    blocks per term, and the block-skipping conjunction; queries, tf/idf
    statistics and state registries must still be byte-identical to the
    in-memory index — including after an incremental ``update_model``
    and a full compaction.
    """
    result = CheckResult("index_parity")
    _, crawl = crawl_generated(spec)
    if not crawl.models:
        result.expect(False, "no models crawled")
        return result
    memory = InvertedFile().build(crawl.models)
    with tempfile.TemporaryDirectory(prefix="index-parity-") as scratch:
        disk = SegmentedIndex(
            f"{scratch}/segments", flush_threshold=16, block_size=4
        ).build(crawl.models)
        # Flushes are model-granular, so a single-page spec can only
        # ever yield one segment; multi-page specs must split.
        result.expect(
            disk.num_segments > 1 or len(crawl.models) < 2,
            f"flush threshold produced only {disk.num_segments} segment(s) "
            f"for {len(crawl.models)} models; multi-segment path unexercised",
        )
        _compare_indexes(result, memory, disk, "fresh build")
        for uri, state_id in memory.states():
            for term in _state_query_terms(spec, uri, state_id):
                result.expect(
                    disk.tf(term, uri, state_id) == memory.tf(term, uri, state_id),
                    f"tf({term!r}, {uri}, {state_id}) diverges",
                )
        memory_engine = SearchEngine.build(crawl.models)
        disk_engine = SearchEngine.build(
            crawl.models,
            index=SegmentedIndex(
                f"{scratch}/engine-segments", flush_threshold=16, block_size=4
            ),
        )
        queries = ["area", "visit", "area state"]
        queries.extend(marker for page in spec.pages for marker in page.markers)
        queries.extend(
            word for page in spec.pages for words in page.words for word in words
        )
        for query in sorted(set(queries)):
            memory_hits = memory_engine.search(query)
            disk_hits = disk_engine.search(query)
            result.expect(
                memory_hits == disk_hits
                and [hit.components for hit in memory_hits]
                == [hit.components for hit in disk_hits],
                f"query {query!r}: results diverge between index backends",
            )
        # Incremental maintenance + compaction must preserve parity.
        touched = crawl.models[0]
        memory.update_model(touched)
        disk.update_model(touched)
        _compare_indexes(result, memory, disk, "after update_model")
        disk.compact_all()
        result.expect(
            disk.num_segments <= 1, f"{disk.num_segments} segments after compact_all"
        )
        _compare_indexes(result, memory, disk, "after compaction")
        # Reopening from the manifest sees the same index.
        reopened = SegmentedIndex.open(disk.path)
        result.expect(
            reopened.states() == memory.states(),
            "reopened index lost or reordered states",
        )
        reopened.close()
        disk.close()
    return result


def _state_query_terms(spec: SiteSpec, uri: str, state_id: str) -> list[str]:
    """A few representative terms to probe tf parity with (shared words
    with high df plus the state's page markers with df == 1)."""
    terms = ["area", "state", "visit", "absent"]
    for page in spec.pages:
        if spec.page_url(page.page_id) == uri:
            terms.extend(page.markers[:2])
            if page.words:
                terms.extend(page.words[0][:2])
    return terms


# -- near-duplicate collapse ------------------------------------------------------


def _noisy_config(noisy: NoisySiteSpec, collapse: bool) -> CrawlerConfig:
    """Crawl limits for a noisy-twin crawl.

    The hot-node cache is off in both modes: it would replay the first
    twin's bytes on every repeated fetch, hiding the volatility the
    check exists to exercise.  With collapse on the cap admits exactly
    the logical states; with it off the cap bounds the explosion at 3x
    the page size (the oracle replays the same bound).
    """
    max_page_states = max(page.num_states for page in noisy.pages)
    if collapse:
        return CrawlerConfig(
            max_additional_states=max_page_states - 1,
            use_hot_node=False,
            max_event_invocations=10_000,
            near_dup_threshold=NEAR_DUP_THRESHOLD,
        )
    return CrawlerConfig(
        max_additional_states=3 * max_page_states - 1,
        use_hot_node=False,
        max_event_invocations=10_000,
    )


def _crawl_noisy(noisy: NoisySiteSpec, collapse: bool):
    """Traced crawl of a fresh noisy server (fresh serial counters)."""
    recorder = Recorder(clock=SimClock())
    crawler = AjaxCrawler(
        NoisyGeneratedSite(noisy),
        _noisy_config(noisy, collapse),
        clock=recorder.clock,
        cost_model=_cost_model(),
        recorder=recorder,
    )
    result = crawler.crawl(noisy.all_urls())
    return crawler, result, recorder


def _page_metrics(crawl, url: str):
    return next(metrics for metrics in crawl.report.pages if metrics.url == url)


def check_near_dup_parity(spec: SiteSpec) -> CheckResult:
    """Banded-LSH collapse vs the noisy-twin generator's closed form.

    Three crawls of the seed's noisy twin-site plus one of the standard
    site:

    * collapse ON — canonical states, twin→canonical mapping, variant
      counts, volatile masks, collapse/event/hash accounting, trace
      events and search non-fragmentation must all equal the spec
      oracles; zero false merges (every canonical maps to a distinct
      spec state).
    * collapse ON under ``MPAjaxCrawler`` — simulated and threaded
      backends must produce the same models as the single-crawler run.
    * collapse OFF — the same noisy site must explode to *exactly* the
      breadth-first unrolling ``expected_exploded_states`` predicts.
    * standard site, dedup unset — no ``state_collapsed`` events, no
      ``dedup.*``/``crawl.states_collapsed`` registry keys, no dedup
      annotations, and page metrics identical to an untraced baseline
      crawl (byte-identity to *main* is pinned by the golden traces in
      ``make trace-verify``).
    """
    result = CheckResult("near_dup_parity")
    noisy = generate_noisy_site(spec.seed, num_pages=len(spec.pages))

    # -- collapse ON: closed-form oracles ---------------------------------
    _, on_crawl, on_recorder = _crawl_noisy(noisy, collapse=True)
    total_collapses = 0
    total_observations = 0
    for page, model in zip(noisy.pages, on_crawl.models):
        label = f"page {page.page_id} (collapse on)"
        expected_states = noisy.expected_canonical_states(page)
        result.expect(
            model.num_states == expected_states,
            f"{label}: {model.num_states} canonical states, "
            f"expected {expected_states}",
        )
        recovered = recover_graph(page, model)
        for problem in recovered.problems:
            result.expect(False, f"{label}: {problem}")
        result.expect(
            len(recovered.mapping) == model.num_states
            and recovered.states == set(range(page.num_states)),
            f"{label}: canonical set is not a bijection onto the spec "
            f"states (a false merge or a missed twin)",
        )
        result.expect(
            recovered.edges == page.edges,
            f"{label}: recovered edges {sorted(recovered.edges)} != "
            f"spec edges {sorted(page.edges)}",
        )
        result.expect(
            len(list(model.transitions())) == len(page.transitions),
            f"{label}: transition rows diverge from the spec edge count",
        )
        by_spec_state = {
            index: model.get_state(state_id)
            for state_id, index in recovered.mapping.items()
        }
        for index in range(page.num_states):
            state = by_spec_state.get(index)
            if state is None:
                continue  # already reported by the bijection expect
            result.expect(
                noisy.noise_token(page, index, 0) in state.text,
                f"{label}: canonical of spec state {index} is not the "
                f"serial-0 (first-rendered) twin",
            )
            variants = noisy.expected_variants(page, index)
            annotated = state.annotations.get("near_dup_variants")
            mask = state.annotations.get("volatile_regions", "")
            if variants > 1:
                result.expect(
                    annotated == str(variants),
                    f"{label}: state {index} annotates {annotated!r} "
                    f"variants, expected {variants}",
                )
                expected_mask = ",".join(noisy.expected_volatile_mask(page, index))
                result.expect(
                    mask == expected_mask,
                    f"{label}: state {index} volatile mask {mask!r} != "
                    f"{expected_mask!r}",
                )
            else:
                result.expect(
                    annotated is None and not mask,
                    f"{label}: single-variant state {index} carries dedup "
                    f"annotations",
                )
        metrics = _page_metrics(on_crawl, model.url)
        collapses = noisy.expected_collapses(page)
        total_collapses += collapses
        total_observations += 1 + len(page.transitions)
        result.expect(
            metrics.states_collapsed == collapses,
            f"{label}: states_collapsed {metrics.states_collapsed} != "
            f"{collapses}",
        )
        result.expect(
            metrics.duplicates_detected == collapses,
            f"{label}: every duplicate must be a near-dup merge "
            f"({metrics.duplicates_detected} != {collapses})",
        )
        result.expect(metrics.states_capped == 0, f"{label}: states were capped")
        result.expect(
            metrics.events_invoked == len(page.transitions),
            f"{label}: {metrics.events_invoked} events fired, expected "
            f"one per spec edge ({len(page.transitions)})",
        )
        result.expect(
            metrics.dedup_states_hashed == 1 + len(page.transitions),
            f"{label}: {metrics.dedup_states_hashed} observations "
            f"fingerprinted, expected {1 + len(page.transitions)}",
        )
        result.expect(
            metrics.dedup_hamming_checks >= collapses,
            f"{label}: fewer Hamming checks than merges",
        )
    collapsed_events = [
        event for event in on_recorder.events if event.kind == STATE_COLLAPSED
    ]
    result.expect(
        len(collapsed_events) == total_collapses,
        f"{len(collapsed_events)} state_collapsed events, "
        f"expected {total_collapses}",
    )
    on_registry = on_crawl.report.registry
    result.expect(
        int(on_registry.counter("crawl.states_collapsed")) == total_collapses,
        "crawl.states_collapsed diverges from the per-page oracle sum",
    )
    result.expect(
        int(on_registry.counter("dedup.states_hashed")) == total_observations,
        "dedup.states_hashed diverges from the observation count",
    )
    result.expect(
        int(on_registry.counter("dedup.hamming_checks")) >= total_collapses,
        "dedup.hamming_checks below the merge count",
    )

    # Search must not fragment across twins: one hit per marker (the
    # canonical), none for a merged twin's volatile token.
    engine = SearchEngine.build(on_crawl.models)
    for page in noisy.pages:
        for index, marker in enumerate(page.markers):
            hits = engine.result_count(marker)
            result.expect(
                hits == 1,
                f"marker {marker!r} matched {hits} states (canonical "
                f"indexing must yield exactly one)",
            )
            result.expect(
                engine.result_count(noisy.noise_token(page, index, 0)) == 1,
                f"serial-0 twin of page {page.page_id} state {index} is "
                f"not the indexed canonical",
            )
            if noisy.expected_variants(page, index) >= 2:
                leaked = engine.result_count(noisy.noise_token(page, index, 1))
                result.expect(
                    leaked == 0,
                    f"merged twin of page {page.page_id} state {index} "
                    f"leaked into the index",
                )

    # -- collapse ON across execution backends ----------------------------
    partitions = _partition(noisy.all_urls(), 2)

    def controller() -> MPAjaxCrawler:
        return MPAjaxCrawler(
            NoisyGeneratedSite(noisy),
            num_proc_lines=2,
            config=_noisy_config(noisy, collapse=True),
            cost_model=_cost_model(),
        )

    single_prints = _model_fingerprints(on_crawl.models)
    for backend in ("simulated", "threads"):
        run = controller().run(partitions, backend=backend)
        backend_prints = _model_fingerprints(run.result.models)
        result.expect(
            backend_prints == single_prints,
            f"{backend} backend models diverge from the single-crawler "
            f"collapse run",
        )
        result.expect(
            run.result.report.total_states_collapsed == total_collapses,
            f"{backend} backend booked "
            f"{run.result.report.total_states_collapsed} collapses, "
            f"expected {total_collapses}",
        )

    # -- collapse OFF: exact explosion ------------------------------------
    _, off_crawl, off_recorder = _crawl_noisy(noisy, collapse=False)
    off_cap = 3 * max(page.num_states for page in noisy.pages)
    for page, model in zip(noisy.pages, off_crawl.models):
        label = f"page {page.page_id} (collapse off)"
        exploded = noisy.expected_exploded_states(page, off_cap)
        result.expect(
            model.num_states == exploded,
            f"{label}: {model.num_states} states, oracle unrolls to "
            f"{exploded}",
        )
        result.expect(
            model.num_states > page.num_states,
            f"{label}: noisy twins did not inflate the exact-identity "
            f"model",
        )
        metrics = _page_metrics(off_crawl, model.url)
        result.expect(
            metrics.events_invoked == noisy.expected_exploded_events(page, off_cap),
            f"{label}: {metrics.events_invoked} events fired, oracle "
            f"says {noisy.expected_exploded_events(page, off_cap)}",
        )
        result.expect(
            metrics.states_collapsed == 0 and metrics.dedup_states_hashed == 0,
            f"{label}: dedup accounting booked with the layer off",
        )
    _expect_dedup_inert(result, off_crawl, off_recorder, "noisy collapse-off")

    # -- standard site: dedup off must be inert ---------------------------
    recorder = Recorder(clock=SimClock())
    traced = AjaxCrawler(
        GeneratedSite(spec),
        conformance_config(spec),
        clock=recorder.clock,
        cost_model=_cost_model(),
        recorder=recorder,
    )
    traced_crawl = traced.crawl(spec.all_urls())
    _expect_dedup_inert(result, traced_crawl, recorder, "standard")
    _, baseline_crawl = crawl_generated(spec)
    result.expect(
        _model_fingerprints(traced_crawl.models)
        == _model_fingerprints(baseline_crawl.models),
        "dedup-off standard models diverge from the baseline crawl",
    )
    baseline_metrics = {m.url: m for m in baseline_crawl.report.pages}
    for metrics in traced_crawl.report.pages:
        result.expect(
            _behavior_fields(metrics)
            == _behavior_fields(baseline_metrics.get(metrics.url)),
            f"{metrics.url}: dedup-off page metrics diverge from the "
            f"baseline crawl",
        )
    return result


def _behavior_fields(metrics) -> Optional[dict]:
    """Page metrics minus the memo-warmth-dependent work counters.

    The digest memo is process-global, so ``hash_bytes_hashed`` (and
    friends) depend on which crawl of identical content ran first in
    the process — they measure hashing *work*, not crawl behaviour, and
    are excluded from cross-run equality."""
    if metrics is None:
        return None
    import dataclasses

    fields = dataclasses.asdict(metrics)
    for key in ("hash_bytes_hashed", "hash_nodes_hashed", "hash_nodes_skipped"):
        fields.pop(key, None)
    return fields


def _expect_dedup_inert(
    result: CheckResult, crawl, recorder: Recorder, label: str
) -> None:
    """A dedup-off crawl must leave zero dedup traces anywhere."""
    result.expect(
        not any(event.kind == STATE_COLLAPSED for event in recorder.events),
        f"{label}: state_collapsed events emitted with dedup off",
    )
    counters = crawl.report.registry.snapshot()["counters"]
    dirty = [
        key
        for key in counters
        if key.startswith("dedup.") or key == "crawl.states_collapsed"
    ]
    result.expect(
        not dirty,
        f"{label}: dedup registry keys booked with dedup off: {dirty}",
    )
    for model in crawl.models:
        for state in model.states():
            result.expect(
                "near_dup_variants" not in state.annotations
                and "volatile_regions" not in state.annotations,
                f"{label}: {model.url} {state.state_id} carries dedup "
                f"annotations with dedup off",
            )


# -- harness entry points ----------------------------------------------------------


def run_conformance(
    spec: SiteSpec,
    checks: tuple[str, ...] = CHECK_NAMES,
) -> ConformanceReport:
    """Run the selected conformance checks over one generated spec."""
    registry: dict[str, Callable[[SiteSpec], CheckResult]] = {
        "ground_truth": check_ground_truth,
        "hotnode_parity": check_hotnode_parity,
        "incremental_parity": check_incremental_parity,
        "parallel_parity": check_parallel_parity,
        "backend_parity": check_backend_parity,
        "search_consistency": check_search_consistency,
        "index_parity": check_index_parity,
        "near_dup_parity": check_near_dup_parity,
    }
    report = ConformanceReport(spec=spec)
    for name in checks:
        try:
            check = registry[name]
        except KeyError:
            raise ValueError(
                f"unknown conformance check {name!r} (have {sorted(registry)})"
            ) from None
        report.results.append(check(spec))
    return report


def spec_for_seed(seed: int, num_pages: Optional[int] = None) -> SiteSpec:
    """The corpus spec of ``seed``: page count varies 1..3 with the seed
    so single-page and multi-page (parallel-relevant) shapes both appear."""
    if num_pages is None:
        num_pages = 1 + seed % 3
    return generate_site(seed, num_pages=num_pages)


def run_corpus(
    seeds,
    checks: tuple[str, ...] = CHECK_NAMES,
    num_pages: Optional[int] = None,
) -> list[ConformanceReport]:
    """Run the harness over many seeds (the smoke-corpus entry point)."""
    return [
        run_conformance(spec_for_seed(seed, num_pages=num_pages), checks=checks)
        for seed in seeds
    ]
