"""Noisy-twin sites: generated apps with per-request volatile regions.

A plain :class:`~repro.testgen.site.GeneratedSite` is a pure function of
its spec — refetching a fragment yields byte-identical markup, so exact
hash dedup already collapses re-observations.  Real AJAX pages are not
like that: a timestamp, rotating ad or request counter makes every
observation of the *same* logical state hash differently, and an
exact-identity crawler re-mints it forever (state explosion).

:class:`NoisyGeneratedSite` reproduces that failure mode determin-
istically: every fragment it serves carries one volatile region
``<div id="vol{page}x{state}">`` whose text is a unique serial token
``zz{page}x{state}x{serial}`` (a per-``(page, state)`` request
counter).  Two observations of the same spec state are therefore
*twins*: byte-different, one token apart in feature space.

Because the noise is confined to that one region and the stable words
of different states are **disjoint** (each state draws its own slice of
:data:`NOISY_WORD_CORPUS`), the collapse ground truth is closed-form —
:class:`NoisySiteSpec` exposes it as oracles:

* dedup ON (``near_dup_threshold=NEAR_DUP_THRESHOLD``, hot node off —
  the cache would replay the first noise token and hide volatility):
  canonical states per page = ``num_states``; the canonical a twin
  merges into is identified by its marker; variant counts equal fetch
  counts (in-degree, +1 for the inlined state 0); the volatile mask is
  exactly ``{"content", "vol{p}x{s}"}``; collapses per page =
  ``len(transitions) + 1 - num_states``.
* dedup OFF: every observation mints a new state; the crawl unrolls the
  transition graph breadth-first until the state cap —
  :meth:`NoisySiteSpec.expected_exploded_states` replays that unrolling
  exactly.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import deque

from repro.testgen.generator import MIN_STATES, generate_site
from repro.testgen.site import GeneratedSite, PAGE_SCRIPT_TEMPLATE
from repro.testgen.spec import PageSpec, SiteSpec

__all__ = [
    "NEAR_DUP_THRESHOLD",
    "NOISY_WORD_CORPUS",
    "VOLATILE_MARKER_SUBSTRINGS",
    "NoisyGeneratedSite",
    "NoisySiteSpec",
    "build_noisy_site",
    "generate_noisy_site",
]

#: Default Hamming threshold for collapsing noisy twins.  Calibrated on
#: seeds 0..49: twin pairs land at distance ~2-9 (one volatile token of
#: ~30+ stable features), distinct-state pairs at ~25-35 (disjoint word
#: slices); 14 sits > 4 sigma from both populations.
NEAR_DUP_THRESHOLD = 14

#: Substring markers of generated volatility.  Corpus words — here, in
#: ``generator.WORD_CORPUS`` and in the fuzz pools — must avoid them,
#: otherwise a stable word could masquerade as a volatile region id or
#: noise token in oracle/text assertions.
VOLATILE_MARKER_SUBSTRINGS = ("vol", "zz")

#: Stable vocabulary for noisy states.  Disjointness is the point: each
#: state of a page draws its own exclusive slice, so distinct states
#: share (almost) no features and sit far apart in simhash space while
#: twins differ by one noise token.  Like ``WORD_CORPUS``, every word is
#: free of ``update_event_patterns`` substrings *and* of
#: :data:`VOLATILE_MARKER_SUBSTRINGS`.
NOISY_WORD_CORPUS = (
    "acorn", "alloy", "anchor", "aspen", "atlas", "auburn", "bamboo",
    "barley", "birch", "bison", "bluff", "briar", "bronze", "butte",
    "cairn", "canyon", "cedar", "cliff", "clover", "coral", "crag",
    "cypress", "dawn", "dune", "falcon", "fennel", "fern", "flint",
    "gale", "ginger", "glade", "gorse", "granite", "grove", "gulf",
    "hazel", "heather", "heron", "hickory", "inlet", "iris", "juniper",
    "kelp", "knoll", "larch", "laurel", "lichen", "linden", "lotus",
    "maple", "marsh", "mesa", "mica", "myrtle", "ocean", "opal",
    "orchid", "osprey", "otter", "pebble", "pine", "plume", "raven",
    "reef", "ridge", "rowan", "sage", "slate", "spruce", "summit",
    "thistle", "wren",
)


class NoisySiteSpec(SiteSpec):
    """A site spec whose server injects volatile regions, with oracles."""

    # -- naming ---------------------------------------------------------------

    def page_token(self, page: PageSpec) -> str:
        """The page's stable title token (chrome shared by its states)."""
        return f"ns{self.seed}p{page.page_id}"

    def volatile_region_id(self, page: PageSpec, state: int) -> str:
        return f"vol{page.page_id}x{state}"

    def noise_token(self, page: PageSpec, state: int, serial: int) -> str:
        """The volatile text of the ``serial``-th render of a state.

        Serial 0 is the first render: the inlined page load for state 0,
        the first fragment fetch for every other state — i.e. the render
        that becomes the canonical state under collapse.
        """
        return f"zz{page.page_id}x{state}x{serial}"

    # -- dedup-ON oracles -----------------------------------------------------

    def expected_canonical_states(self, page: PageSpec) -> int:
        """Canonical state count: one per logical spec state."""
        return page.num_states

    def expected_variants(self, page: PageSpec, state: int) -> int:
        """Observations collapsing into a state's canonical.

        Every in-edge is fired exactly once (from its source's canonical
        snapshot) and fetches a fresh twin; state 0 is additionally
        observed once at page load via the inlined fragment.
        """
        return page.in_degree(state) + (1 if state == 0 else 0)

    def expected_collapses(self, page: PageSpec) -> int:
        """Merges per page: observations minus canonicals."""
        return len(page.transitions) + 1 - page.num_states

    def expected_volatile_mask(self, page: PageSpec, state: int) -> tuple[str, ...]:
        """Region ids that differ across a canonical's variants.

        The noise div's digest changes between twins, and region diffs
        report the full containment chain — so the mask is the volatile
        div plus the enclosing ``content`` region, or empty for a state
        observed only once.
        """
        if self.expected_variants(page, state) < 2:
            return ()
        return tuple(sorted(("content", self.volatile_region_id(page, state))))

    # -- dedup-OFF oracle -----------------------------------------------------

    def expected_exploded_states(self, page: PageSpec, max_states: int) -> int:
        """Model size of an exact-identity crawl of the noisy page.

        Every fetch hashes uniquely, so the breadth-first crawl unrolls
        the transition graph: each explored twin re-fires its spec
        state's out-edges, minting one new twin per firing until the
        state cap rejects further admissions.
        """
        states, _ = self._explode(page, max_states)
        return states

    def expected_exploded_events(self, page: PageSpec, max_states: int) -> int:
        """Events fired by the exact-identity crawl (admitted twins only
        are explored; capped observations still cost their firing)."""
        _, events = self._explode(page, max_states)
        return events

    @staticmethod
    def _explode(page: PageSpec, max_states: int) -> tuple[int, int]:
        states = 1
        events = 0
        frontier: deque[int] = deque([0])
        while frontier:
            spec_state = frontier.popleft()
            for transition in page.outgoing(spec_state):
                events += 1
                if states >= max_states:
                    continue
                states += 1
                frontier.append(transition.dst)
        return states, events


def generate_noisy_site(
    seed: int,
    num_pages: int = 1,
    min_states: int = MIN_STATES,
    max_states: int = 6,
    extra_edges: int = 3,
    words_per_state: int = 10,
    base_url: str = "http://noisy.test",
) -> NoisySiteSpec:
    """Sample a noisy-twin site spec from ``seed``.

    The transition graphs are sampled exactly like ``generate_site``;
    only the stable vocabulary changes — each state receives its own
    exclusive ``words_per_state``-word slice of a per-page shuffle of
    :data:`NOISY_WORD_CORPUS`, so sibling states share no stable words.
    """
    base = generate_site(
        seed,
        num_pages=num_pages,
        min_states=min_states,
        max_states=max_states,
        extra_edges=extra_edges,
        base_url=base_url,
    )
    if max_states * words_per_state > len(NOISY_WORD_CORPUS):
        raise ValueError(
            f"cannot deal {max_states} disjoint slices of {words_per_state} "
            f"words from a {len(NOISY_WORD_CORPUS)}-word corpus"
        )
    import random

    pages = []
    for page in base.pages:
        deck = list(NOISY_WORD_CORPUS)
        random.Random(seed * 1_000_003 + page.page_id).shuffle(deck)
        words = tuple(
            tuple(deck[state * words_per_state : (state + 1) * words_per_state])
            for state in range(page.num_states)
        )
        pages.append(dataclasses.replace(page, words=words))
    return NoisySiteSpec(seed=seed, base_url=base.base_url, pages=tuple(pages))


class NoisyGeneratedSite(GeneratedSite):
    """Serves a noisy spec: stateful, one serial counter per (page, state).

    Unlike its parent this server is deliberately *not* a pure function
    of the spec — but it is still deterministic: a state's ``n``-th
    render always carries noise token ``serial = n - 1``, regardless of
    which other pages are interleaved (the counter is per page/state),
    so single-process, threaded and re-run crawls all see the same
    bytes in the same per-state order.
    """

    def __init__(self, spec: NoisySiteSpec) -> None:
        super().__init__(spec)
        self.spec: NoisySiteSpec = spec
        self._serials: dict[tuple[int, int], int] = {}
        self._serial_lock = threading.Lock()

    def _next_serial(self, page_id: int, state: int) -> int:
        with self._serial_lock:
            serial = self._serials.get((page_id, state), 0)
            self._serials[(page_id, state)] = serial + 1
        return serial

    def render_fragment(self, page: PageSpec, state: int) -> str:
        """A twin of ``state``: stable terms + nav + one volatile div."""
        words = " ".join(page.words[state]) if page.words else ""
        nav = "".join(
            f'<li><a id="{t.element_id}" onclick="go({t.dst})">'
            f"visit {t.dst}</a></li>"
            for t in page.outgoing(state)
        )
        serial = self._next_serial(page.page_id, state)
        volatile_id = self.spec.volatile_region_id(page, state)
        noise = self.spec.noise_token(page, state, serial)
        return (
            f'<p class="terms">{page.marker_of(state)} {words}</p>\n'
            f'<ul id="nav">{nav}</ul>\n'
            f'<div id="{volatile_id}">{noise}</div>'
        )

    def render_page(self, page: PageSpec) -> str:
        # Minimal chrome on purpose: beyond the title token and the
        # content/nav region skeleton, states share nothing stable, so
        # distinct states stay far apart in simhash space.
        script = PAGE_SCRIPT_TEMPLATE.format(page_id=page.page_id)
        return f"""<html>
<head><title>{self.spec.page_token(page)}</title></head>
<body onload="init()">
<div id="content">{self.render_fragment(page, 0)}</div>
<script type="text/javascript">{script}</script>
</body>
</html>"""


def build_noisy_site(spec: NoisySiteSpec) -> NoisyGeneratedSite:
    """Convenience constructor mirroring :func:`generate_noisy_site`."""
    return NoisyGeneratedSite(spec)
