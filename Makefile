# Developer entry points.  `make check` is the one-command gate:
# the tier-1 test suite plus a smoke run of the fault-tolerance
# benchmark, so robustness regressions surface before review.

PYTHON ?= python
PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
export PYTHONPATH

.PHONY: check test bench-faults bench-smoke bench trace-verify trace-regen

check: test bench-faults bench-smoke trace-verify

test:
	$(PYTHON) -m pytest -x -q

# Re-run the seeded golden crawls and diff their event streams against
# tests/golden/*.jsonl (event-level diff on mismatch).
trace-verify:
	$(PYTHON) -m repro.obs.goldens --verify

# Rewrite the goldens after an intentional behaviour change.
trace-regen:
	$(PYTHON) -m repro.obs.goldens --regen

bench-faults:
	$(PYTHON) -m pytest benchmarks/bench_ext_faults.py -q --benchmark-disable

# Cheap hashing-work regression gate: re-measures the Merkle hasher
# against the full-rewalk baseline and enforces the >=5x hashed-bytes
# threshold (writes benchmarks/results/BENCH_hashing.json).
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_perf_hashing.py -q --benchmark-disable

bench:
	$(PYTHON) -m pytest benchmarks -q
