# Developer entry points.  `make check` is the one-command gate:
# the tier-1 test suite plus a smoke run of the fault-tolerance
# benchmark, so robustness regressions surface before review.

PYTHON ?= python
PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
export PYTHONPATH

.PHONY: check test test-fast coverage bench-faults bench-smoke bench \
	trace-verify trace-regen profile-smoke testgen-smoke serve-smoke \
	obs-live-smoke bench-serving bench-parallel bench-index bench-dedup

check: test bench-faults bench-smoke bench-index bench-dedup trace-verify \
	profile-smoke testgen-smoke serve-smoke obs-live-smoke

test:
	$(PYTHON) -m pytest -x -q

# The suite minus @pytest.mark.slow (corpus sweeps, experiment
# reproductions) — the inner-loop command while editing.
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

# Stdlib-only line-coverage gate over src/repro/testgen/ and
# src/repro/serve/ (the container has no coverage.py); thresholds live
# in [tool.repro.coverage-gate] in pyproject.toml.
coverage:
	$(PYTHON) tools/coverage_gate.py

# Re-run the seeded golden crawls and diff their event streams against
# tests/golden/*.jsonl (event-level diff on mismatch).
trace-verify:
	$(PYTHON) -m repro.obs.goldens --verify

# Rewrite the goldens after an intentional behaviour change.
trace-regen:
	$(PYTHON) -m repro.obs.goldens --regen

# Span/profile/doctor smoke: healthy crawl must diagnose clean, a
# fault-storm crawl and a skewed parallel run must be caught.
profile-smoke:
	$(PYTHON) -m repro.obs.smoke

# Conformance gate: crawl 50 generated sites against their ground
# truth and crash-fuzz the JS/DOM substrate over the pinned corpus.
testgen-smoke:
	$(PYTHON) -m repro.cli testgen conformance --seeds 0:50 --quiet
	$(PYTHON) -m repro.cli testgen fuzz --seeds 0:2000

# Serving-tier gate: boot a real HTTP server over a crawled site and
# drive the query/result/metrics/429 sequence end to end.
serve-smoke:
	$(PYTHON) -m repro.serve.smoke

# Live-telemetry gate: a seeded latency storm on a virtual clock must
# fire the slo-burn-rate doctor rule; a healthy run must stay silent.
obs-live-smoke:
	$(PYTHON) -m repro.serve.live_smoke

# Serving load benchmark: latency percentiles, RPS, cache hit rate and
# 429 counts (writes benchmarks/results/BENCH_serving.json).
bench-serving:
	$(PYTHON) -m pytest benchmarks/bench_serving.py -q --benchmark-disable

# Threads-backend scaling gate: wall-clock speedup over 1/2/4 workers
# on a real-latency site, with a loose >=1.5x floor at 4 workers
# (writes benchmarks/results/BENCH_parallel.json).
bench-parallel:
	$(PYTHON) -m pytest benchmarks/bench_parallel.py -q --benchmark-disable

bench-faults:
	$(PYTHON) -m pytest benchmarks/bench_ext_faults.py -q --benchmark-disable

# Cheap hashing-work regression gate: re-measures the Merkle hasher
# against the full-rewalk baseline and enforces the >=5x hashed-bytes
# threshold (writes benchmarks/results/BENCH_hashing.json).
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_perf_hashing.py -q --benchmark-disable

# Segmented-index gate: mints a 100k-state corpus (REPRO_BENCH_INDEX_STATES
# scales it), builds both index backends and enforces the >=5x on-disk
# size floor, block-skipping decode floor and query-latency budgets
# (writes benchmarks/results/BENCH_index.json).  The index_parity
# differential check itself runs inside testgen-smoke.
bench-index:
	$(PYTHON) -m pytest benchmarks/bench_index.py -q --benchmark-disable

# Near-duplicate collapse gate: crawls the noisy-twin corpus with the
# banded-LSH layer off and on, and enforces the >=2x states-crawled/
# indexed floors with zero false merges (writes
# benchmarks/results/BENCH_dedup.json).  The near_dup_parity
# differential check itself runs inside testgen-smoke.
bench-dedup:
	$(PYTHON) -m pytest benchmarks/bench_dedup.py -q --benchmark-disable

# Generator-harness throughput gate (writes
# benchmarks/results/BENCH_testgen.json).
bench-testgen:
	$(PYTHON) -m pytest benchmarks/bench_perf_testgen.py -q --benchmark-disable

bench:
	$(PYTHON) -m pytest benchmarks -q
