# Developer entry points.  `make check` is the one-command gate:
# the tier-1 test suite plus a smoke run of the fault-tolerance
# benchmark, so robustness regressions surface before review.

PYTHON ?= python
PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
export PYTHONPATH

.PHONY: check test bench-faults bench

check: test bench-faults

test:
	$(PYTHON) -m pytest -x -q

bench-faults:
	$(PYTHON) -m pytest benchmarks/bench_ext_faults.py -q --benchmark-disable

bench:
	$(PYTHON) -m pytest benchmarks -q
