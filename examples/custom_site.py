"""Crawling a custom AJAX application (not SimTube).

The crawler is generic: anything that speaks the SimulatedServer
interface and serves HTML + the supported JavaScript subset can be
crawled.  This example builds a small tabbed product-catalogue app whose
tabs load via XMLHttpRequest, crawls it, and prints the state machine —
including the hot-node cache avoiding repeated tab fetches.

    python examples/custom_site.py
"""

from repro import AjaxCrawler, SearchEngine
from repro.net import Response, RoutedServer

TABS = {
    "specs": "Technical specs: 15 inch display, 32 GB memory, aluminium body.",
    "reviews": "Customer reviews: great keyboard, superb battery, fair price.",
    "shipping": "Shipping info: dispatched in two days, free returns.",
}

PAGE = """<html>
<head><title>UltraBook 3000</title></head>
<body onload="openTab('specs')">
<h1>UltraBook 3000</h1>
<div id="tabs">
  <a id="tab-specs" onclick="openTab('specs')">Specs</a>
  <a id="tab-reviews" onclick="openTab('reviews')">Reviews</a>
  <a id="tab-shipping" onclick="openTab('shipping')">Shipping</a>
</div>
<div id="content">select a tab</div>
<script>
function fetchTab(name) {
    var req = new XMLHttpRequest();
    req.open("GET", "/tab?name=" + name, true);
    req.send(null);
    return req.responseText;
}
function openTab(name) {
    document.getElementById("content").innerHTML = fetchTab(name);
}
</script>
</body>
</html>"""


def build_server() -> RoutedServer:
    server = RoutedServer()

    @server.route(r"/product")
    def product(request, match):
        return Response(body=PAGE)

    @server.route(r"/tab")
    def tab(request, match):
        name = request.query.get("name", "")
        if name not in TABS:
            return Response(status=404, body="no such tab")
        return Response(body=f"<p>{TABS[name]}</p>")

    return server


def main() -> None:
    server = build_server()
    crawler = AjaxCrawler(server)
    result = crawler.crawl_page("http://shop.test/product")

    model = result.model
    print(f"states: {model.num_states} (one per tab)")
    for state in model.states():
        preview = " ".join(state.text.split())[:60]
        print(f"  {state.state_id}: {preview}...")

    print(f"\ntransitions: {model.num_transitions}")
    print(f"events invoked: {result.metrics.events_invoked}")
    print(f"network calls:  {result.metrics.ajax_calls} "
          f"(one per tab — the hot-node cache absorbed "
          f"{result.metrics.cached_hits} repeats)")
    print(f"hot nodes detected: {sorted(crawler.hot_cache.hot_nodes)}")

    engine = SearchEngine.build([model])
    (hit,) = engine.search("battery")
    print(f"\nsearch 'battery' -> {hit.uri} {hit.state_id} "
          "(the Reviews tab, invisible to a traditional crawler)")


if __name__ == "__main__":
    main()
