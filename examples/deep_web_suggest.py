"""Form-filling crawl of a Google-Suggest-style application.

The thesis explicitly excludes forms ("No Forms", §4.3) and names them
as future work combining AJAX Search with Deep Web techniques.  This
example runs that extension: the crawler types dictionary values into
the suggest box, fires its onkeyup handler, and indexes the resulting
suggestion states.

    python examples/deep_web_suggest.py
"""

from repro import AjaxCrawler, SearchEngine
from repro.crawler import FormFillingAjaxCrawler
from repro.sites import SyntheticSuggest


def main() -> None:
    site = SyntheticSuggest()

    # The basic crawler of chapters 3/4 sees nothing: the page has no
    # clickable events, all content hides behind typed input.
    basic = AjaxCrawler(site)
    basic_result = basic.crawl_page(site.search_url)
    print(f"basic crawler:        {basic_result.model.num_states} state(s)  "
          "<- the form gate")

    # The form-filling crawler probes the input with a value dictionary
    # (here: popular query prefixes), Deep-Web style.
    dictionary = ("dance", "funny", "american", "chris", "wow")
    crawler = FormFillingAjaxCrawler(site, dictionary)
    result = crawler.crawl_page(site.search_url)
    print(f"form-filling crawler: {result.model.num_states} states "
          f"({result.metrics.events_invoked} probes, "
          f"{result.metrics.ajax_calls} AJAX calls)")

    for transition in result.model.transitions()[:5]:
        event = transition.event
        print(f"  typed {event.input_value!r} -> state {transition.to_state}")

    engine = SearchEngine.build([result.model])
    for query in ("tutorial", "idol", "cats"):
        hits = engine.search(query)
        states = ", ".join(f"{hit.state_id}" for hit in hits)
        print(f"search {query!r}: {len(hits)} hit(s) [{states}]")


if __name__ == "__main__":
    main()
