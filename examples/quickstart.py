"""Quickstart: crawl an AJAX site, inspect the model, search it.

Runs in a few seconds:

    python examples/quickstart.py
"""

from repro import AjaxCrawler, SearchEngine
from repro.sites import SiteConfig, SyntheticYouTube


def main() -> None:
    # 1. A deterministic YouTube-like AJAX site: videos with paginated
    #    comments loaded through XMLHttpRequest.
    site = SyntheticYouTube(SiteConfig(num_videos=15, seed=42))

    # 2. Crawl it.  The crawler loads each page in a headless browser,
    #    fires the user events (next/prev/jump links), and builds one
    #    transition graph of DOM states per page.
    crawler = AjaxCrawler(site)
    result = crawler.crawl(site.all_video_urls())

    print("== crawl summary ==")
    report = result.report
    print(f"pages:            {report.num_pages}")
    print(f"states:           {report.total_states}")
    print(f"events invoked:   {report.total_events}")
    print(f"network calls:    {report.total_ajax_calls}")
    print(f"cache hits:       {report.total_cached_hits} "
          "(duplicate server calls avoided by the hot-node policy)")
    print(f"virtual time:     {report.total_time_ms / 1000:.1f}s")

    # 3. Look at one application model: states and event transitions.
    model = max(result.models, key=lambda m: m.num_states)
    print(f"\n== transition graph of {model.url} ==")
    print(f"{model.num_states} states, {model.num_transitions} transitions")
    for transition in model.transitions()[:8]:
        event = transition.event
        print(f"  {transition.from_state} --{event.trigger} {event.handler}--> "
              f"{transition.to_state}")

    # 4. Build the state-granular search engine and query it.  Results
    #    are (URL, state) pairs: the comment *page* that matched.
    engine = SearchEngine.build(result.models)
    print("\n== search: 'wow' ==")
    for hit in engine.search("wow", limit=5):
        print(f"  {hit.uri}  {hit.state_id}  score={hit.score:.4f}")


if __name__ == "__main__":
    main()
