"""Regenerate the paper's whole evaluation chapter in one run.

Runs every table/figure runner (at a reduced corpus size so the script
finishes in ~1 minute) and writes a combined markdown report to
``paper_report.md``.  For full-size runs use the benchmark suite:
``pytest benchmarks/ --benchmark-only``.

    python examples/reproduce_paper.py [report_path]
"""

import os
import sys

# Reduced sizes for the demo run (must be set before importing the
# experiment modules, which read them at import time).
os.environ.setdefault("REPRO_FULL_VIDEOS", "120")
os.environ.setdefault("REPRO_QUERY_VIDEOS", "100")

from repro.experiments import exp_caching, exp_crawl, exp_dataset, exp_parallel, exp_query, exp_threshold  # noqa: E402


def main() -> None:
    report_path = sys.argv[1] if len(sys.argv) > 1 else "paper_report.md"
    sections: list[tuple[str, str]] = []

    print("running dataset statistics (Table 7.1, Figures 7.1/7.2)...")
    sections.append(("Table 7.1", exp_dataset.format_table_7_1(exp_dataset.table_7_1())))
    sections.append(("Figure 7.1", exp_dataset.format_figure_7_1(exp_dataset.figure_7_1())))
    sections.append((
        "Figure 7.2",
        exp_dataset.format_figure_7_2(exp_dataset.figure_7_2(subset_sizes=(20, 40, 80, 120))),
    ))

    print("running crawl-performance experiments (Table 7.2, Figures 7.3/7.4)...")
    sections.append(("Table 7.2", exp_crawl.format_table_7_2(exp_crawl.table_7_2())))
    sections.append(("Figure 7.3", exp_crawl.format_figure_7_3(exp_crawl.figure_7_3())))
    sections.append(("Figure 7.4", exp_crawl.format_figure_7_4(exp_crawl.figure_7_4())))

    print("running caching experiments (Figures 7.5-7.7)...")
    points = exp_caching.caching_study(subset_sizes=(10, 20, 40, 60))
    sections.append(("Figure 7.5", exp_caching.format_figure_7_5(points)))
    sections.append(("Figure 7.6", exp_caching.format_figure_7_6(points)))
    sections.append(("Figure 7.7", exp_caching.format_figure_7_7(points)))

    print("running parallelization experiments (Table 7.3, Figure 7.8)...")
    sections.append(("Table 7.3", exp_parallel.format_table_7_3(exp_parallel.table_7_3())))
    sections.append(("Figure 7.8", exp_parallel.format_figure_7_8(exp_parallel.figure_7_8())))

    print("running query experiments (Tables 7.4/7.5, Figure 7.9)...")
    sections.append(("Table 7.4", exp_query.format_table_7_4(exp_query.table_7_4())))
    timings = exp_query.table_7_5()
    sections.append(("Table 7.5", exp_query.format_table_7_5(timings)))
    sections.append(("Figure 7.9", exp_query.format_figure_7_9(timings)))

    print("running threshold experiments (Figures 7.10/7.11)...")
    threshold_points = exp_threshold.threshold_study()
    sections.append(("Figure 7.10", exp_threshold.format_figure_7_10(threshold_points)))
    sections.append(("Figure 7.11", exp_threshold.format_figure_7_11(threshold_points)))
    crawl_k = exp_threshold.crawl_threshold(threshold_points, limit=0.4)
    recall_k = exp_threshold.recall_threshold(threshold_points, target=0.7)

    with open(report_path, "w", encoding="utf-8") as report:
        report.write("# AJAX Crawl — evaluation reproduction report\n\n")
        report.write(
            f"Corpus: {os.environ['REPRO_FULL_VIDEOS']} videos "
            f"(query experiments: {os.environ['REPRO_QUERY_VIDEOS']}).\n\n"
        )
        for title, body in sections:
            report.write(f"## {title}\n\n```\n{body}\n```\n\n")
        report.write("## Derived thresholds\n\n")
        report.write(f"- crawl threshold at 0.4 relative throughput: **{crawl_k} states** (paper: ~5)\n")
        report.write(f"- recall threshold at 0.7 of max gain: **{recall_k} states** (paper: ~4)\n")

    print(f"\nwrote {report_path} ({len(sections)} sections)")


if __name__ == "__main__":
    main()
