"""The full chapter-6 pipeline: precrawl -> partition -> parallel crawl
-> per-partition indexes -> query shipping with global idf.

    python examples/parallel_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import Browser, MPAjaxCrawler, Precrawler, ShardedSearchEngine, URLPartitioner
from repro.parallel import DistributedResultAggregator, SimpleAjaxCrawler, load_models
from repro.sites import SiteConfig, SyntheticYouTube


def main() -> None:
    site = SyntheticYouTube(SiteConfig(num_videos=30, seed=5))

    # Phase 1 — precrawling: build the hyperlink graph and PageRank by
    # following static links from the start video (no JavaScript).
    precrawler = Precrawler(site, max_pages=30)
    precrawl = precrawler.run(site.video_url(0))
    print(f"precrawl: {len(precrawl.urls)} pages discovered, "
          f"PageRank mass={sum(precrawl.pageranks.values()):.3f}")

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)

        # Phase 2 — partition the URL list into per-process directories.
        partitioner = URLPartitioner(partition_size=10)
        directories = partitioner.write(precrawl.urls, root)
        print(f"partitions: {[d.name for d in directories]}")

        # Phase 3 — parallel crawling.  Each partition is crawled by an
        # independent SimpleAjaxCrawler (own browser, clock, hot-node
        # cache) and its application models are serialized to disk.
        for directory in directories:
            worker = SimpleAjaxCrawler(site)
            _, summary = worker.crawl_partition_dir(directory)
            print(f"  partition {summary.partition}: {summary.num_pages} pages, "
                  f"{summary.total_states} states, "
                  f"{summary.crawl_time_ms / 1000:.1f}s virtual")

        # The MPAjaxCrawler scheduler: same work, process-line timing.
        controller = MPAjaxCrawler(site, num_proc_lines=4)
        partitions = [URLPartitioner.read(d) for d in directories]
        run = controller.run_simulated(partitions)
        print(f"4 process lines: makespan {run.makespan_ms / 1000:.1f}s "
              f"(per-line {[round(t / 1000, 1) for t in run.line_finish_ms]})")

        # Phase 4 — one inverted file per partition, loaded from disk.
        model_partitions = [load_models(d) for d in directories]

        # Phase 5 — query shipping: the query runs on every shard; the
        # merger recombines document frequencies into a global idf and
        # re-sorts (§6.5).
        engine = ShardedSearchEngine.build(
            model_partitions, pageranks=precrawl.pageranks
        )
        print(f"\nsharded engine: {len(engine.shards)} shards, "
              f"{engine.num_states} states total")
        for query in ("wow", "american idol"):
            hits = engine.search(query, limit=3)
            print(f"query {query!r}: {engine.result_count(query)} results; top:")
            for hit in hits:
                print(f"  {hit.uri}  {hit.state_id}  score={hit.score:.4f}")

        # Phase 6 — distributed result aggregation (§6.6): find the
        # partition a result came from, replay its event path.
        aggregator = DistributedResultAggregator(Browser(site), model_partitions)
        top = engine.search("wow", limit=1)[0]
        page = aggregator.reconstruct(top)
        print(f"\nreconstructed {top.uri} {top.state_id} from partition "
              f"{aggregator.partition_of(top.uri) + 1}; "
              f"'wow' present: {'wow' in page.text.lower()}")


if __name__ == "__main__":
    main()
