"""The motivating example of section 1.1: searching YouTube comments.

Traditional search sees only the first comment page of each video;
AJAX search sees every comment page as its own state.  This example
shows a query failing on the traditional index, succeeding on the AJAX
index, and the matching state being reconstructed by replaying events.

    python examples/youtube_comments.py
"""

from repro import AjaxCrawler, Browser, ResultAggregator, SearchEngine
from repro.search import tokenize
from repro.sites import SiteConfig, SyntheticYouTube


def pick_q3_style_query(site: SyntheticYouTube, crawled_models) -> tuple[str, str]:
    """Build a query like the paper's Q3 "Morcheeba Enjoy the Ride Singer":
    the band name (static content, on every state) conjoined with a word
    that only occurs on a deeper comment page of the same video."""
    by_url = {model.url: model for model in crawled_models}
    for index in range(site.config.num_videos):
        if site.comment_pages_of(index) < 2:
            continue
        model = by_url[site.video_url(index)]
        if model.num_states < 2:
            continue
        band = site.corpus.video_identity(index).band
        first_page_words = set(tokenize(model.initial_state.text))
        deep_states = [s for s in model.states() if s.depth > 0]
        for state in deep_states:
            for word in tokenize(state.text):
                if word.isalpha() and len(word) >= 6 and word not in first_page_words:
                    return f"{band} {word}", model.url
    raise SystemExit("no suitable query found; increase the corpus size")


def main() -> None:
    site = SyntheticYouTube(SiteConfig(num_videos=20, seed=9))
    crawler = AjaxCrawler(site)
    result = crawler.crawl(site.all_video_urls())

    ajax_engine = SearchEngine.build(result.models)
    # max_state_index=1 keeps only each page's initial state: this is
    # exactly what a traditional crawler would have indexed.
    traditional_engine = SearchEngine.build(result.models, max_state_index=1)

    query, source_url = pick_q3_style_query(site, result.models)
    print(f"query: {query!r}")
    print(f"(the second word occurs only on a deep comment page of {source_url})")

    traditional_hits = traditional_engine.search(query)
    ajax_hits = ajax_engine.search(query)
    print(f"traditional search: {len([h for h in traditional_hits if h.uri == source_url])} "
          f"results for that video  <- false negative!")
    print(f"AJAX search:        {len([h for h in ajax_hits if h.uri == source_url])} "
          "results for that video")
    assert any(hit.uri == source_url for hit in ajax_hits)
    assert not any(hit.uri == source_url for hit in traditional_hits)

    # Recall gain over a popular-query sample (Table 7.4 flavour).
    print("\nquery           traditional  AJAX")
    for sample in ("wow", "dance", "our song", "chris brown"):
        print(
            f"{sample:<15} {traditional_engine.result_count(sample):>11}  "
            f"{ajax_engine.result_count(sample):>4}"
        )

    # Result aggregation (§5.4): replay the event path to the matching
    # state and hand back a *live* page.
    top = next(hit for hit in ajax_hits if hit.uri == source_url)
    model = next(m for m in result.models if m.url == top.uri)
    aggregator = ResultAggregator(Browser(site))
    page = aggregator.reconstruct(model, top.state_id)
    reconstructed_words = set(tokenize(page.text))
    present = all(term in reconstructed_words for term in tokenize(query))
    print(f"\nreconstructed {top.uri} {top.state_id}; all query terms present: {present}")
    print("events still live on the reconstructed page:",
          [binding.handler for binding in page.events()][:4])


if __name__ == "__main__":
    main()
